package lapack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, m, n int) Mat {
	a := NewMat(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func TestMatBasics(t *testing.T) {
	a, err := MatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6}) // columns (1,2) (3,4) (5,6)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 2 || a.At(0, 2) != 5 {
		t.Errorf("column-major indexing wrong: %v", a.Data)
	}
	a.Set(1, 1, 9)
	if a.At(1, 1) != 9 {
		t.Error("Set failed")
	}
	if _, err := MatFrom(2, 2, []float64{1}); err == nil {
		t.Error("bad MatFrom must fail")
	}
	tr := a.Transpose()
	if tr.M != 3 || tr.N != 2 || tr.At(2, 0) != 5 || tr.At(1, 1) != 9 {
		t.Errorf("transpose wrong: %+v", tr)
	}
	c := a.Clone()
	c.Set(0, 0, 42)
	if a.At(0, 0) == 42 {
		t.Error("Clone must not share storage")
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 4, 6)
	id := Identity(6)
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(a, c) > 1e-15 {
		t.Error("A·I != A")
	}
	if _, err := MatMul(a, randMat(rng, 5, 2)); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := MatFrom(2, 2, []float64{1, 3, 2, 4}) // [[1,2],[3,4]]
	b, _ := MatFrom(2, 2, []float64{5, 7, 6, 8}) // [[5,6],[7,8]]
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 43, 22, 50} // [[19,22],[43,50]] column-major
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-14 {
			t.Errorf("C[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMatVec(t *testing.T) {
	a, _ := MatFrom(2, 3, []float64{1, 4, 2, 5, 3, 6}) // [[1,2,3],[4,5,6]]
	y, err := MatVec(a, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("y = %v", y)
	}
	if _, err := MatVec(a, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestNorm2Robust(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %g", got)
	}
	// Values that would overflow naive sum-of-squares.
	big := []float64{1e300, 1e300}
	if got := Norm2(big); math.IsInf(got, 1) || math.Abs(got-1e300*math.Sqrt2) > 1e285 {
		t.Errorf("overflow-safe Norm2 = %g", got)
	}
	if Norm2(nil) != 0 {
		t.Error("empty norm must be 0")
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system.
	a, _ := MatFrom(3, 3, []float64{4, 1, 0, 1, 3, 1, 0, 1, 2})
	want := []float64{1, -2, 3}
	b, _ := MatVec(a, want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2 + 3t to noiseless samples: residual 0, exact recovery.
	m := 20
	a := NewMat(m, 2)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		ti := float64(i) / 4
		a.Set(i, 0, 1)
		a.Set(i, 1, ti)
		b[i] = 2 + 3*ti
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("fit = %v", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		m := 5 + rng.Intn(20)
		n := 1 + rng.Intn(4)
		a := randMat(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw; acceptable
		}
		ax, _ := MatVec(a, x)
		// Residual must be orthogonal to every column of A.
		for j := 0; j < n; j++ {
			s := 0.0
			col := a.Col(j)
			for i := 0; i < m; i++ {
				s += col[i] * (b[i] - ax[i])
			}
			if math.Abs(s) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQRErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := QRFactor(randMat(rng, 2, 5)); err == nil {
		t.Error("m < n must fail")
	}
	f, err := QRFactor(randMat(rng, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("rhs length mismatch must fail")
	}
	// Singular matrix: duplicate columns.
	a := NewMat(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i))
		a.Set(i, 1, float64(i))
	}
	if _, err := LeastSquares(a, []float64{1, 2, 3, 4}); err == nil {
		t.Error("singular system must fail")
	}
}

func TestMaskedLeastSquares(t *testing.T) {
	// Fit a constant; one wildly wrong sample is masked out.
	m := 10
	a := NewMat(m, 1)
	b := make([]float64, m)
	mask := make([]int64, m)
	for i := 0; i < m; i++ {
		a.Set(i, 0, 1)
		b[i] = 5
	}
	b[3] = 1e6
	mask[3] = 1
	x, err := MaskedLeastSquares(a, b, mask)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-10 {
		t.Errorf("masked fit = %g, want 5", x[0])
	}
	// Without the mask the outlier drags the fit.
	x2, _ := LeastSquares(a, b)
	if x2[0] < 1000 {
		t.Errorf("unmasked fit = %g, should be polluted", x2[0])
	}
	// Too few surviving rows.
	all := make([]int64, m)
	for i := range all {
		all[i] = 1
	}
	if _, err := MaskedLeastSquares(a, b, all); err == nil {
		t.Error("fully masked system must fail")
	}
	if _, err := MaskedLeastSquares(a, b, mask[:2]); err == nil {
		t.Error("mask length mismatch must fail")
	}
}

func TestSVDReconstructsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		m := 1 + rng.Intn(12)
		n := 1 + rng.Intn(12)
		a := randMat(rng, m, n)
		r, err := SVD(a)
		if err != nil {
			return false
		}
		if MaxAbsDiff(r.Reconstruct(), a) > 1e-9 {
			return false
		}
		// Singular values descending and non-negative.
		for i := 1; i < len(r.S); i++ {
			if r.S[i] > r.S[i-1]+1e-12 || r.S[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDOrthonormality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 10, 6)
	r, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	utu, _ := MatMul(r.U.Transpose(), r.U)
	if MaxAbsDiff(utu, Identity(6)) > 1e-9 {
		t.Error("UᵀU != I")
	}
	vtv, _ := MatMul(r.V.Transpose(), r.V)
	if MaxAbsDiff(vtv, Identity(6)) > 1e-9 {
		t.Error("VᵀV != I")
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) has singular values 3, 2.
	a := NewMat(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	s, err := SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-3) > 1e-12 || math.Abs(s[1]-2) > 1e-12 {
		t.Errorf("S = %v", s)
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 3, 8)
	r, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(r.Reconstruct(), a) > 1e-9 {
		t.Error("wide-matrix reconstruction failed")
	}
	if _, err := SVD(Mat{}); err == nil {
		t.Error("empty SVD must fail")
	}
}

func TestRank(t *testing.T) {
	// Rank-1 outer product.
	a := NewMat(5, 4)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64(i+1)*float64(j+1))
		}
	}
	r, err := Rank(a, 1e-10)
	if err != nil || r != 1 {
		t.Errorf("Rank = %d, %v; want 1", r, err)
	}
	z := NewMat(3, 3)
	if r, _ := Rank(z, 1e-10); r != 0 {
		t.Errorf("zero-matrix rank = %d", r)
	}
}

func TestSymEig(t *testing.T) {
	// Known symmetric matrix [[2,1],[1,2]]: eigenvalues 3 and 1.
	a, _ := MatFrom(2, 2, []float64{2, 1, 1, 2})
	r, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Values[0]-3) > 1e-10 || math.Abs(r.Values[1]-1) > 1e-10 {
		t.Errorf("eigenvalues = %v", r.Values)
	}
	// A·q = λ·q for each pair.
	for j := 0; j < 2; j++ {
		q := r.Vectors.Col(j)
		aq, _ := MatVec(a, q)
		for i := range aq {
			if math.Abs(aq[i]-r.Values[j]*q[i]) > 1e-10 {
				t.Errorf("eigenpair %d violated", j)
			}
		}
	}
	if _, err := SymEig(NewMat(2, 3)); err == nil {
		t.Error("non-square must fail")
	}
}

func TestSymEigRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	r, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct Q·diag(λ)·Qᵀ.
	qd := NewMat(n, n)
	for j := 0; j < n; j++ {
		col := r.Vectors.Col(j)
		for i := 0; i < n; i++ {
			qd.Set(i, j, col[i]*r.Values[j])
		}
	}
	back, _ := MatMul(qd, r.Vectors.Transpose())
	if MaxAbsDiff(back, a) > 1e-8 {
		t.Errorf("eigen reconstruction error %g", MaxAbsDiff(back, a))
	}
	// Trace preserved.
	tr, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		tr += a.At(i, i)
		sum += r.Values[i]
	}
	if math.Abs(tr-sum) > 1e-9 {
		t.Errorf("trace %g != eigensum %g", tr, sum)
	}
}

func TestNNLSNonNegativity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		m := 6 + rng.Intn(10)
		n := 1 + rng.Intn(5)
		a := randMat(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("trial %d: x[%d] = %g < 0", trial, j, v)
			}
		}
		// KKT: for x_j > 0, gradient ~ 0; for x_j = 0, gradient <= 0.
		ax, _ := MatVec(a, x)
		for j := 0; j < n; j++ {
			g := 0.0
			col := a.Col(j)
			for i := 0; i < m; i++ {
				g += col[i] * (b[i] - ax[i])
			}
			if x[j] > 1e-10 && math.Abs(g) > 1e-6 {
				t.Fatalf("trial %d: active gradient %g at %d", trial, g, j)
			}
			if x[j] == 0 && g > 1e-6 {
				t.Fatalf("trial %d: violated constraint gradient %g at %d", trial, g, j)
			}
		}
	}
}

func TestNNLSRecoversNonNegativeTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n := 30, 4
	a := randMat(rng, m, n)
	want := []float64{0.5, 0, 2, 1}
	b, _ := MatVec(a, want)
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(x[j]-want[j]) > 1e-8 {
			t.Errorf("x[%d] = %g, want %g", j, x[j], want[j])
		}
	}
	if _, err := NNLS(a, []float64{1}); err == nil {
		t.Error("rhs mismatch must fail")
	}
}
