package lapack

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q·R of an m×n matrix with
// m >= n. The factors are stored compactly: R in the upper triangle, the
// Householder vectors below the diagonal, with their scalar factors in
// tau.
type QR struct {
	qr  Mat
	tau []float64
}

// QRFactor computes the factorization.
func QRFactor(a Mat) (*QR, error) {
	if a.M < a.N {
		return nil, fmt.Errorf("%w: QR wants m >= n, got %dx%d", ErrShape, a.M, a.N)
	}
	f := &QR{qr: a.Clone(), tau: make([]float64, a.N)}
	m, n := a.M, a.N
	for k := 0; k < n; k++ {
		col := f.qr.Col(k)[k:]
		alpha := Norm2(col)
		if alpha == 0 {
			f.tau[k] = 0
			continue
		}
		if col[0] > 0 {
			alpha = -alpha
		}
		// v = x - alpha·e1, normalized so v[0] = 1.
		v0 := col[0] - alpha
		for i := 1; i < len(col); i++ {
			col[i] /= v0
		}
		f.tau[k] = -v0 / alpha
		col[0] = alpha // R diagonal entry; v[0]=1 is implicit
		// Apply H = I - tau·v·vᵀ to the remaining columns.
		for j := k + 1; j < n; j++ {
			cj := f.qr.Col(j)[k:]
			s := cj[0]
			for i := 1; i < m-k; i++ {
				s += f.qr.Col(k)[k+i] * cj[i]
			}
			s *= f.tau[k]
			cj[0] -= s
			for i := 1; i < m-k; i++ {
				cj[i] -= s * f.qr.Col(k)[k+i]
			}
		}
	}
	return f, nil
}

// applyQT applies Qᵀ to a vector of length m in place.
func (f *QR) applyQT(y []float64) {
	m, n := f.qr.M, f.qr.N
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		v := f.qr.Col(k)[k:]
		s := y[k]
		for i := 1; i < m-k; i++ {
			s += v[i] * y[k+i]
		}
		s *= f.tau[k]
		y[k] -= s
		for i := 1; i < m-k; i++ {
			y[k+i] -= s * v[i]
		}
	}
}

// Solve returns the least-squares solution x minimizing ||A·x - b||₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.M, f.qr.N
	if len(b) != m {
		return nil, fmt.Errorf("%w: rhs length %d for %d rows", ErrShape, len(b), m)
	}
	y := append([]float64(nil), b...)
	f.applyQT(y)
	// Back-substitute R·x = y[:n], detecting rank deficiency relative to
	// the largest diagonal magnitude.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(f.qr.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	x := y[:n]
	for i := n - 1; i >= 0; i-- {
		d := f.qr.At(i, i)
		if math.Abs(d) <= 1e-12*maxDiag {
			return nil, fmt.Errorf("%w: negligible pivot at column %d", ErrSingular, i)
		}
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return append([]float64(nil), x...), nil
}

// LeastSquares solves min ||A·x - b||₂ in one call.
func LeastSquares(a Mat, b []float64) ([]float64, error) {
	f, err := QRFactor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// MaskedLeastSquares solves the least-squares problem using only the rows
// where mask is zero — the paper's flagged-pixel fitting (§2.2): rows
// whose flags mark bad measurements are excluded from the normal
// equations entirely.
func MaskedLeastSquares(a Mat, b []float64, mask []int64) ([]float64, error) {
	if len(b) != a.M || len(mask) != a.M {
		return nil, fmt.Errorf("%w: %d rows, %d rhs, %d mask", ErrShape, a.M, len(b), len(mask))
	}
	rows := 0
	for _, f := range mask {
		if f == 0 {
			rows++
		}
	}
	if rows < a.N {
		return nil, fmt.Errorf("%w: only %d unmasked rows for %d unknowns", ErrSingular, rows, a.N)
	}
	sub := NewMat(rows, a.N)
	rb := make([]float64, rows)
	r := 0
	for i := 0; i < a.M; i++ {
		if mask[i] != 0 {
			continue
		}
		for j := 0; j < a.N; j++ {
			sub.Set(r, j, a.At(i, j))
		}
		rb[r] = b[i]
		r++
	}
	return LeastSquares(sub, rb)
}
