package lapack

import (
	"fmt"
	"math"
)

// NNLS solves min ||A·x - b||₂ subject to x >= 0 with the Lawson-Hanson
// active-set algorithm — the non-negative least squares the paper lists
// among required spectrum-processing primitives (§2.2).
func NNLS(a Mat, b []float64) ([]float64, error) {
	if len(b) != a.M {
		return nil, fmt.Errorf("%w: rhs length %d for %d rows", ErrShape, len(b), a.M)
	}
	m, n := a.M, a.N
	x := make([]float64, n)
	passive := make([]bool, n) // the active-set bookkeeping: true = unconstrained
	// w = Aᵀ(b - A·x), the dual/gradient vector.
	w := make([]float64, n)
	resid := append([]float64(nil), b...)

	computeW := func() {
		for j := 0; j < n; j++ {
			if passive[j] {
				w[j] = 0
				continue
			}
			col := a.Col(j)
			s := 0.0
			for i := 0; i < m; i++ {
				s += col[i] * resid[i]
			}
			w[j] = s
		}
	}
	updateResid := func() {
		copy(resid, b)
		for j := 0; j < n; j++ {
			if x[j] == 0 {
				continue
			}
			col := a.Col(j)
			for i := 0; i < m; i++ {
				resid[i] -= x[j] * col[i]
			}
		}
	}

	const maxOuter = 3 * 64
	tol := 1e-12 * Norm2(b) * float64(n)
	for outer := 0; outer < maxOuter+3*n; outer++ {
		computeW()
		// Pick the most violated constraint.
		best, bestW := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			return x, nil // KKT satisfied
		}
		passive[best] = true
		for {
			// Solve the unconstrained problem on the passive set.
			cols := make([]int, 0, n)
			for j := 0; j < n; j++ {
				if passive[j] {
					cols = append(cols, j)
				}
			}
			sub := NewMat(m, len(cols))
			for c, j := range cols {
				copy(sub.Col(c), a.Col(j))
			}
			z, err := LeastSquares(sub, b)
			if err != nil {
				// Degenerate subproblem: drop the newest column and stop
				// considering it this round.
				passive[best] = false
				x[best] = 0
				break
			}
			negative := false
			for c := range cols {
				if z[c] <= 0 {
					negative = true
					break
				}
			}
			if !negative {
				for j := range x {
					x[j] = 0
				}
				for c, j := range cols {
					x[j] = z[c]
				}
				updateResid()
				break
			}
			// Step toward z only as far as feasibility allows, then move
			// newly-zero variables back to the active set.
			alpha := math.Inf(1)
			for c, j := range cols {
				if z[c] <= 0 {
					if step := x[j] / (x[j] - z[c]); step < alpha {
						alpha = step
					}
				}
			}
			for c, j := range cols {
				x[j] += alpha * (z[c] - x[j])
				if x[j] <= 1e-14 {
					x[j] = 0
					passive[j] = false
				}
			}
		}
	}
	return x, nil
}
