package lapack

import (
	"fmt"
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// of an m×n matrix with m >= n: U is m×n with orthonormal columns, S has
// the n singular values in descending order, V is n×n orthogonal.
type SVDResult struct {
	U Mat
	S []float64
	V Mat
}

// SVD computes the decomposition with the one-sided Jacobi method
// (Hestenes): plane rotations orthogonalize the columns of a working
// copy of A; the resulting column norms are the singular values. This is
// the library's *gesvd stand-in — slower than bidiagonalization but
// robustly accurate, which matters more than speed at the array sizes
// the paper's spectra workloads use (§2.2 PCA over spectra).
//
// Matrices with m < n are handled by decomposing the transpose and
// swapping U and V.
func SVD(a Mat) (SVDResult, error) {
	if a.M == 0 || a.N == 0 {
		return SVDResult{}, fmt.Errorf("%w: empty matrix", ErrShape)
	}
	if a.M < a.N {
		r, err := SVD(a.Transpose())
		if err != nil {
			return SVDResult{}, err
		}
		return SVDResult{U: r.V, S: r.S, V: r.U}, nil
	}
	m, n := a.M, a.N
	u := a.Clone()
	v := Identity(n)

	const maxSweeps = 60
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				cp, cq := u.Col(p), u.Col(q)
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					alpha += cp[i] * cp[i]
					beta += cq[i] * cq[i]
					gamma += cp[i] * cq[i]
				}
				if math.Abs(gamma) > eps*math.Sqrt(alpha*beta) {
					off += gamma * gamma
					// Jacobi rotation zeroing the (p,q) off-diagonal of AᵀA.
					zeta := (beta - alpha) / (2 * gamma)
					t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
					c := 1 / math.Sqrt(1+t*t)
					s := c * t
					for i := 0; i < m; i++ {
						up := cp[i]
						cp[i] = c*up - s*cq[i]
						cq[i] = s*up + c*cq[i]
					}
					vp, vq := v.Col(p), v.Col(q)
					for i := 0; i < n; i++ {
						tp := vp[i]
						vp[i] = c*tp - s*vq[i]
						vq[i] = s*tp + c*vq[i]
					}
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Column norms are the singular values; normalize U's columns.
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		col := u.Col(j)
		s[j] = Norm2(col)
		if s[j] > 0 {
			inv := 1 / s[j]
			for i := range col {
				col[i] *= inv
			}
		}
	}
	// Sort descending, permuting U and V columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })
	us, vs, ss := NewMat(m, n), NewMat(n, n), make([]float64, n)
	for j, src := range idx {
		copy(us.Col(j), u.Col(src))
		copy(vs.Col(j), v.Col(src))
		ss[j] = s[src]
	}
	return SVDResult{U: us, S: ss, V: vs}, nil
}

// Reconstruct returns U·diag(S)·Vᵀ, for validation.
func (r SVDResult) Reconstruct() Mat {
	m, n := r.U.M, r.V.M
	out := NewMat(m, n)
	for j := 0; j < n; j++ {
		oc := out.Col(j)
		for k := 0; k < len(r.S); k++ {
			f := r.S[k] * r.V.At(j, k)
			if f == 0 {
				continue
			}
			uc := r.U.Col(k)
			for i := 0; i < m; i++ {
				oc[i] += f * uc[i]
			}
		}
	}
	return out
}

// SingularValues returns just the singular values of A.
func SingularValues(a Mat) ([]float64, error) {
	r, err := SVD(a)
	if err != nil {
		return nil, err
	}
	return r.S, nil
}

// Rank estimates the numerical rank at the given relative tolerance.
func Rank(a Mat, rtol float64) (int, error) {
	s, err := SingularValues(a)
	if err != nil {
		return 0, err
	}
	if len(s) == 0 || s[0] == 0 {
		return 0, nil
	}
	r := 0
	for _, v := range s {
		if v > rtol*s[0] {
			r++
		}
	}
	return r, nil
}
