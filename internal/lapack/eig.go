package lapack

import (
	"fmt"
	"math"
	"sort"
)

// EigResult holds the spectral decomposition A = Q·diag(λ)·Qᵀ of a
// symmetric matrix: eigenvalues λ in descending order, eigenvectors as
// the columns of Q.
type EigResult struct {
	Values  []float64
	Vectors Mat
}

// SymEig diagonalizes a symmetric matrix with the classical cyclic
// Jacobi method. The PCA pipeline (§2.2) runs it on spectrum covariance
// matrices.
func SymEig(a Mat) (EigResult, error) {
	if a.M != a.N {
		return EigResult{}, fmt.Errorf("%w: %dx%d is not square", ErrShape, a.M, a.N)
	}
	n := a.N
	w := a.Clone()
	q := Identity(n)
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for r := p + 1; r < n; r++ {
				off += w.At(p, r) * w.At(p, r)
			}
		}
		if math.Sqrt(off) < 1e-14 {
			break
		}
		for p := 0; p < n-1; p++ {
			for r := p + 1; r < n; r++ {
				apq := w.At(p, r)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(r, r)
				zeta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Rotate rows/columns p and r of W.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, r)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, r, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(r, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(r, k, s*wpk+c*wqk)
				}
				// Accumulate the eigenvector rotation.
				for k := 0; k < n; k++ {
					qkp, qkq := q.At(k, p), q.At(k, r)
					q.Set(k, p, c*qkp-s*qkq)
					q.Set(k, r, s*qkp+c*qkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	outVals := make([]float64, n)
	outVecs := NewMat(n, n)
	for j, src := range idx {
		outVals[j] = vals[src]
		copy(outVecs.Col(j), q.Col(src))
	}
	return EigResult{Values: outVals, Vectors: outVecs}, nil
}
