// Package lapack is the library's LAPACK substitute: dense linear algebra
// kernels over column-major float64 buffers — precisely the element order
// of sqlarray blobs (§3.5 of the paper: "array items are consecutively
// stored in a column major order commonly used by math libraries written
// in FORTRAN such as LAPACK"), so an array payload converts to a matrix
// argument with a single bulk copy and no transposition.
//
// Provided: matrix products, Householder QR, one-sided Jacobi SVD (the
// paper's *gesvd stand-in), a symmetric Jacobi eigensolver, linear least
// squares (optionally masked), and Lawson-Hanson non-negative least
// squares (§2.2: "certain spectrum processing operations also require
// non-negative least squares fitting").
package lapack

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape reports inconsistent matrix dimensions.
var ErrShape = errors.New("lapack: shape mismatch")

// ErrSingular reports a rank-deficient system where a unique solution was
// required.
var ErrSingular = errors.New("lapack: singular system")

// Mat is a dense column-major matrix view: element (i,j) of an m×n matrix
// lives at Data[i+j*m].
type Mat struct {
	M, N int
	Data []float64
}

// NewMat allocates a zero m×n matrix.
func NewMat(m, n int) Mat { return Mat{M: m, N: n, Data: make([]float64, m*n)} }

// MatFrom wraps an existing column-major buffer.
func MatFrom(m, n int, data []float64) (Mat, error) {
	if len(data) != m*n {
		return Mat{}, fmt.Errorf("%w: %d elements for %dx%d", ErrShape, len(data), m, n)
	}
	return Mat{M: m, N: n, Data: data}, nil
}

// At returns element (i, j).
func (a Mat) At(i, j int) float64 { return a.Data[i+j*a.M] }

// Set stores element (i, j).
func (a Mat) Set(i, j int, v float64) { a.Data[i+j*a.M] = v }

// Col returns column j as a slice aliasing the matrix.
func (a Mat) Col(j int) []float64 { return a.Data[j*a.M : (j+1)*a.M] }

// Clone deep-copies the matrix.
func (a Mat) Clone() Mat {
	return Mat{M: a.M, N: a.N, Data: append([]float64(nil), a.Data...)}
}

// Transpose returns Aᵀ as a new matrix.
func (a Mat) Transpose() Mat {
	t := NewMat(a.N, a.M)
	for j := 0; j < a.N; j++ {
		col := a.Col(j)
		for i := 0; i < a.M; i++ {
			t.Data[j+i*a.N] = col[i]
		}
	}
	return t
}

// MatMul returns C = A·B.
func MatMul(a, b Mat) (Mat, error) {
	if a.N != b.M {
		return Mat{}, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, a.M, a.N, b.M, b.N)
	}
	c := NewMat(a.M, b.N)
	for j := 0; j < b.N; j++ {
		bcol := b.Col(j)
		ccol := c.Col(j)
		for k := 0; k < a.N; k++ {
			f := bcol[k]
			if f == 0 {
				continue
			}
			acol := a.Col(k)
			for i := 0; i < a.M; i++ {
				ccol[i] += f * acol[i]
			}
		}
	}
	return c, nil
}

// MatVec returns y = A·x.
func MatVec(a Mat, x []float64) ([]float64, error) {
	if len(x) != a.N {
		return nil, fmt.Errorf("%w: %dx%d · %d-vector", ErrShape, a.M, a.N, len(x))
	}
	y := make([]float64, a.M)
	for j := 0; j < a.N; j++ {
		f := x[j]
		if f == 0 {
			continue
		}
		col := a.Col(j)
		for i := range y {
			y[i] += f * col[i]
		}
	}
	return y, nil
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Identity returns the n×n identity.
func Identity(n int) Mat {
	id := NewMat(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	return id
}

// MaxAbsDiff returns max |a-b| over all entries (test helper exported for
// package users verifying reconstructions).
func MaxAbsDiff(a, b Mat) float64 {
	if a.M != b.M || a.N != b.N {
		return math.Inf(1)
	}
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}
