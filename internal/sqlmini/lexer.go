// Package sqlmini implements a small SQL dialect sufficient to run the
// paper's workload verbatim: single-table SELECT statements with scalar
// and aggregate expressions, schema-qualified user-defined function calls
// (FloatArray.Item_1(v, 0)), WITH (NOLOCK) table hints, and WHERE
// filters, executed as clustered index scans over the sqlarray engine.
package sqlmini

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct   // ( ) , . *
	tokOp      // + - / = <> < <= > >=
	tokKeyword // SELECT FROM WHERE WITH AS AND OR NOT TOP LIMIT NULL
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "WITH": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "TOP": true,
	"NULL": true, "NOLOCK": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "LIMIT": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"EXPLAIN": true, "ANALYZE": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

// Error is a parse/execution error carrying the statement offset.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: at offset %d: %s", e.Pos, e.Msg) }

func errAt(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src string
	pos int
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || c == '#' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if isDigit(c) {
				l.pos++
				continue
			}
			if c == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
				continue
			}
			if (c == 'e' || c == 'E') && !seenExp && l.pos > start {
				seenExp = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errAt(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	case c == '+' || c == '-' || c == '/' || c == '%':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil
	}
	return token{}, errAt(start, "unexpected character %q", c)
}

// lexAll tokenizes the whole statement up front.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
