package sqlmini

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"sqlarray/internal/engine"
	"sqlarray/internal/obs"
)

// This file lowers a parsed SelectStmt into an operator pipeline:
//
//	SelectStmt --(sargable analysis)--> key range + residual predicate
//	           --(compile)-----------> scan → filter → [aggregate] → project → limit
//
// Key-range pushdown: top-level AND conjuncts of the form
//
//	id >= k, id > k, id <= k, id < k, id = k        (and the flipped forms)
//
// where id is the clustered key column and k a numeric literal are
// removed from the WHERE tree and become the scan's [lo, hi] bounds, so
// point and range queries descend the B+tree instead of scanning it.

// ExecOptions tunes pipeline execution. The zero value picks defaults.
type ExecOptions struct {
	// Ctx, when non-nil, makes the query cancelable: every operator
	// scan/drain loop polls it, so canceling the context aborts a
	// long-running query mid-scan with ctx.Err() and the normal close
	// path still releases every page pin. A nil Ctx costs one branch per
	// poll and never cancels.
	Ctx context.Context
	// Parallelism caps the worker goroutines of a parallel aggregate
	// scan. 0 means runtime.GOMAXPROCS(0); 1 disables parallelism.
	Parallelism int
	// ParallelThreshold is the minimum table row count before an
	// aggregate scan goes parallel. 0 means the default (8192). Small
	// scans are not worth the goroutine and partition setup.
	ParallelThreshold int64
	// BatchSize is the row capacity of the chunks the batch executor
	// moves between operators. 0 means the default (1024).
	BatchSize int
	// RowPipeline forces the legacy row-at-a-time operator pipeline
	// instead of the batch executor. Kept for comparison benchmarks and
	// the golden-equivalence suite; results are identical either way.
	RowPipeline bool
	// Snapshot, when non-nil, runs the query against this caller-owned
	// read view instead of one acquired at open — several queries can
	// share one consistent view of the database. The caller keeps
	// ownership: Rows.Close does not release it. When nil, every query
	// acquires its own snapshot at open and releases it at Close.
	Snapshot *engine.Snapshot
	// Trace, when non-nil, turns on per-operator instrumentation and is
	// filled in when the query's Rows close: the annotated plan tree,
	// the wall time, and the registry counter deltas the query caused.
	// EXPLAIN ANALYZE is a rendering of this trace. Instrumentation
	// costs two counter samples and a clock read per operator batch;
	// with Trace nil and no slow-query threshold the pipeline runs
	// exactly as before.
	Trace *obs.QueryTrace
	// SlowQueryThreshold, when positive, instruments the query like
	// Trace does and — if the query's wall time reaches the threshold —
	// emits the ANALYZE-style summary to SlowQueryLog as one structured
	// JSON line.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query entries. Nil with a positive
	// threshold falls back to obs.DefaultSlowLog (stderr).
	SlowQueryLog *obs.SlowLog
}

// instrumented reports whether the pipeline should carry per-operator
// instrumentation.
func (o ExecOptions) instrumented() bool {
	return o.Trace != nil || o.SlowQueryThreshold > 0
}

const defaultParallelThreshold = 8192

func (o ExecOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o ExecOptions) threshold() int64 {
	if o.ParallelThreshold > 0 {
		return o.ParallelThreshold
	}
	return defaultParallelThreshold
}

func (o ExecOptions) batchSize() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return defaultBatchSize
}

// keyBounds is the key range extracted from sargable WHERE conjuncts.
// The zero value is the unbounded range.
type keyBounds struct {
	lo, hi       int64
	hasLo, hasHi bool
	empty        bool // provably no rows (contradictory bounds)
}

func unboundedKeys() keyBounds { return keyBounds{} }

func (b keyBounds) loKey() int64 {
	if b.hasLo {
		return b.lo
	}
	return math.MinInt64
}

func (b keyBounds) hiKey() int64 {
	if b.hasHi {
		return b.hi
	}
	return math.MaxInt64
}

func (b *keyBounds) addLo(k int64) {
	if !b.hasLo || k > b.lo {
		b.lo, b.hasLo = k, true
	}
	b.check()
}

func (b *keyBounds) addHi(k int64) {
	if !b.hasHi || k < b.hi {
		b.hi, b.hasHi = k, true
	}
	b.check()
}

func (b *keyBounds) check() {
	if b.hasLo && b.hasHi && b.lo > b.hi {
		b.empty = true
	}
}

func (b *keyBounds) merge(o keyBounds) {
	if o.hasLo {
		b.addLo(o.lo)
	}
	if o.hasHi {
		b.addHi(o.hi)
	}
	if o.empty {
		b.empty = true
	}
}

// extractKeyBounds splits the WHERE tree into key bounds and the residual
// predicate that still needs per-row evaluation. Only top-level AND
// conjuncts are considered; anything under OR/NOT stays residual.
func extractKeyBounds(e Expr, schema *engine.Schema) (keyBounds, Expr) {
	b := unboundedKeys()
	residual := extractInto(e, schema, &b)
	return b, residual
}

func extractInto(e Expr, schema *engine.Schema, b *keyBounds) Expr {
	bin, ok := e.(*BinaryExpr)
	if !ok {
		return e
	}
	if bin.Op == "AND" {
		l := extractInto(bin.L, schema, b)
		r := extractInto(bin.R, schema, b)
		switch {
		case l == nil && r == nil:
			return nil
		case l == nil:
			return r
		case r == nil:
			return l
		}
		if l == bin.L && r == bin.R {
			return e
		}
		return &BinaryExpr{Op: "AND", L: l, R: r}
	}
	if kb, ok := sargableBounds(bin, schema); ok {
		b.merge(kb)
		return nil
	}
	return e
}

// sargableBounds recognizes a single comparison between the clustered key
// column and a numeric literal, in either operand order.
func sargableBounds(bin *BinaryExpr, schema *engine.Schema) (keyBounds, bool) {
	op := bin.Op
	switch op {
	case "=", "<", "<=", ">", ">=":
	default:
		return keyBounds{}, false
	}
	if isKeyColumn(bin.L, schema) {
		if f, ok := constNumber(bin.R); ok {
			return boundsFor(op, f)
		}
		return keyBounds{}, false
	}
	if isKeyColumn(bin.R, schema) {
		if f, ok := constNumber(bin.L); ok {
			return boundsFor(flipOp(op), f)
		}
	}
	return keyBounds{}, false
}

func isKeyColumn(e Expr, schema *engine.Schema) bool {
	c, ok := e.(*ColRef)
	return ok && schema.ColIndex(c.Name) == schema.Key
}

// constNumber matches a numeric literal, optionally negated.
func constNumber(e Expr) (float64, bool) {
	switch n := e.(type) {
	case *NumberLit:
		return litFloat(n), true
	case *UnaryExpr:
		if n.Op != "-" {
			return 0, false
		}
		if lit, ok := n.X.(*NumberLit); ok {
			return -litFloat(lit), true
		}
	}
	return 0, false
}

func litFloat(n *NumberLit) float64 {
	if n.IsInt {
		return float64(n.I)
	}
	return n.F
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // "="
}

// boundsFor converts "key op k" into integer key bounds. k may be
// fractional (keys are BIGINT, so `id > 10.5` means `id >= 11`). Literals
// too large for exact handling are left to the residual filter — the
// caller gets ok=false and keeps the conjunct.
func boundsFor(op string, k float64) (keyBounds, bool) {
	// The residual evaluator compares keys as float64, which is exact
	// only within ±2^53. Pushing down a bound outside that region would
	// disagree with how the same predicate evaluates when it is not
	// sargable (e.g. under an OR), so decline and keep the conjunct in
	// the filter. |k| < 2^53 also keeps every derived bound (k±1) inside
	// the exact region.
	if math.IsNaN(k) || k <= -(1<<53) || k >= 1<<53 {
		return keyBounds{}, false
	}
	b := unboundedKeys()
	floor, ceil := int64(math.Floor(k)), int64(math.Ceil(k))
	switch op {
	case "=":
		if floor != ceil { // fractional: no BIGINT key can match
			b.empty = true
			return b, true
		}
		b.addLo(floor)
		b.addHi(floor)
	case ">=":
		b.addLo(ceil)
	case ">":
		b.addLo(floor + 1)
	case "<=":
		b.addHi(floor)
	case "<":
		b.addHi(ceil - 1)
	default:
		return keyBounds{}, false
	}
	return b, true
}

// ---- pipeline construction ----------------------------------------------

// pipeline is a ready-to-run operator tree plus its output shape and
// the plan tree describing it (rendered by EXPLAIN, annotated in place
// by the analyze wrappers when the pipeline is instrumented).
type pipeline struct {
	root    operator
	columns []string
	plan    *obs.PlanNode
}

// planState threads plan-node construction and optional operator
// instrumentation through pipeline assembly. When instrumenting, every
// operator is wrapped in an analyze shim that counts rows/batches,
// accumulates wall time, and attributes buffer-pool and blob-chunk
// reads to its subtree by sampling the database's live counters around
// each child call (see explain.go).
type planState struct {
	instrument bool
	sample     func() (pagesRead, chunkReads uint64)
}

func newPlanState(db *engine.DB, opts ExecOptions) *planState {
	ps := &planState{instrument: opts.instrumented()}
	if ps.instrument {
		ps.sample = func() (uint64, uint64) {
			return db.Pool().Stats().LogicalReads, db.Blobs().Stats().ChunkReads
		}
	}
	return ps
}

func (ps *planState) batch(op batchOperator, n *obs.PlanNode) batchOperator {
	if !ps.instrument {
		return op
	}
	n.Analyzed = true
	return &batchAnalyzeOp{child: op, node: n, sample: ps.sample}
}

func (ps *planState) row(op operator, n *obs.PlanNode) operator {
	if !ps.instrument {
		return op
	}
	n.Analyzed = true
	return &rowAnalyzeOp{child: op, node: n, sample: ps.sample}
}

// scanPlanNode describes the access path the scan operator was given:
// the sargable analysis collapses to a point lookup, a range scan, a
// full scan, or a provably empty range.
func scanPlanNode(table string, b keyBounds) *obs.PlanNode {
	var kind string
	switch {
	case b.empty:
		kind = "empty range"
	case b.hasLo && b.hasHi && b.lo == b.hi:
		kind = fmt.Sprintf("point lookup key=%d", b.lo)
	case b.hasLo || b.hasHi:
		lo, hi := "-inf", "+inf"
		if b.hasLo {
			lo = fmt.Sprint(b.lo)
		}
		if b.hasHi {
			hi = fmt.Sprint(b.hi)
		}
		kind = fmt.Sprintf("range scan keys [%s, %s]", lo, hi)
	default:
		kind = "full scan"
	}
	return &obs.PlanNode{Name: "Scan", Detail: fmt.Sprintf("on %s (%s)", table, kind)}
}

func parallelAggPlanNode(table string, lo, hi int64, workers int, residual Expr) *obs.PlanNode {
	n := &obs.PlanNode{
		Name:   "Parallel Aggregate Scan",
		Detail: fmt.Sprintf("on %s (range scan keys [%d, %d])", table, lo, hi),
	}
	n.AddExtra("workers", "%d", workers)
	if residual != nil {
		n.AddExtra("filter", "%s", ExprString(residual))
	}
	return n
}

func projectPlanNode(columns []string, child *obs.PlanNode) *obs.PlanNode {
	return &obs.PlanNode{
		Name:     "Project",
		Detail:   "[" + strings.Join(columns, ", ") + "]",
		Children: []*obs.PlanNode{child},
	}
}

// compiledStmt is the outcome of compiling a statement's expressions.
type compiledStmt struct {
	items     []compiled
	columns   []string
	where     compiled // residual predicate (after pushdown), may be nil
	accs      []*accumulator
	used      []bool // schema columns referenced anywhere in the plan
	aggregate bool
}

// compileStmt compiles the statement's expressions against the table
// schema, registering aggregate accumulators. residualWhere replaces
// stmt.Where (the planner strips pushed-down conjuncts first). snap is
// the read view MAX-column derefs resolve blob pages through.
func compileStmt(db *engine.DB, tbl *engine.Table, stmt *SelectStmt, residualWhere Expr, snap *engine.Snapshot) (*compiledStmt, error) {
	cc := &compileCtx{db: db, tbl: tbl, schema: tbl.Schema(), snap: snap, used: make([]bool, len(tbl.Schema().Columns))}
	cs := &compiledStmt{}
	for _, it := range stmt.Items {
		cs.aggregate = cs.aggregate || hasAggregate(it.Expr)
	}
	for i, it := range stmt.Items {
		c, err := cc.compile(it.Expr, cs.aggregate)
		if err != nil {
			return nil, err
		}
		cs.items = append(cs.items, c)
		name := it.Alias
		if name == "" {
			name = ExprString(it.Expr)
			if len(name) > 40 {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		cs.columns = append(cs.columns, name)
	}
	if stmt.Where != nil && hasAggregate(stmt.Where) {
		return nil, fmt.Errorf("sql: aggregates are not allowed in WHERE")
	}
	if residualWhere != nil {
		w, err := cc.compile(residualWhere, false)
		if err != nil {
			return nil, err
		}
		cs.where = w
	}
	cs.accs = cc.accs
	cs.used = cc.used
	return cs, nil
}

// buildPipeline lowers a statement into an operator tree: the batch
// executor by default, or the legacy row-at-a-time pipeline when
// ExecOptions.RowPipeline is set. Every scan in the tree — including
// the parallel aggregate workers — reads through snap, so the whole
// query observes one commit.
func buildPipeline(db *engine.DB, tbl *engine.Table, stmt *SelectStmt, snap *engine.Snapshot, opts ExecOptions) (*pipeline, error) {
	bounds := unboundedKeys()
	residual := stmt.Where
	if stmt.Where != nil && !hasAggregate(stmt.Where) {
		bounds, residual = extractKeyBounds(stmt.Where, tbl.Schema())
	}
	cs, err := compileStmt(db, tbl, stmt, residual, snap)
	if err != nil {
		return nil, err
	}

	lo, hi := bounds.loKey(), bounds.hiKey()
	if bounds.empty {
		lo, hi = 1, 0 // empty range: the scan yields nothing
	}

	ps := newPlanState(db, opts)
	if opts.RowPipeline {
		return buildRowPipeline(db, tbl, stmt, residual, cs, snap, lo, hi, bounds, opts, ps), nil
	}

	var root batchOperator
	var plan *obs.PlanNode
	if cs.aggregate && !bounds.empty {
		if plo, phi, workers, ok := parallelAggSpan(tbl, snap, lo, hi, opts); ok {
			plan = parallelAggPlanNode(tbl.Name(), plo, phi, workers, residual)
			root = ps.batch(&batchParallelAggOp{
				tbl:       tbl,
				snap:      snap,
				qctx:      opts.Ctx,
				lo:        plo,
				hi:        phi,
				workers:   workers,
				batchSize: opts.batchSize(),
				need:      cs.used,
				accs:      cs.accs,
				newWorker: newWorkerFunc(db, tbl, stmt, residual, snap),
			}, plan)
		}
	}
	if root == nil {
		plan = scanPlanNode(tbl.Name(), bounds)
		root = ps.batch(&batchScanOp{tbl: tbl, snap: snap, qctx: opts.Ctx, lo: lo, hi: hi, need: cs.used}, plan)
		if cs.where != nil {
			fn := &obs.PlanNode{Name: "Filter", Detail: ExprString(residual), Children: []*obs.PlanNode{plan}}
			root = ps.batch(&batchFilterOp{child: root, qctx: opts.Ctx, pred: cs.where}, fn)
			plan = fn
		}
		if cs.aggregate {
			an := &obs.PlanNode{Name: "Aggregate", Children: []*obs.PlanNode{plan}}
			root = ps.batch(&batchAggOp{child: root, qctx: opts.Ctx, accs: cs.accs}, an)
			plan = an
		}
	}
	plan = projectPlanNode(cs.columns, plan)
	root = ps.batch(&batchProjectOp{child: root, items: cs.items}, plan)
	// TOP n on an aggregate plan is vacuous (exactly one row is emitted,
	// and the parser guarantees n >= 1); omitting the limit keeps its
	// downward cap clip from shrinking the aggregate's scan batches.
	if stmt.Top > 0 && !cs.aggregate {
		ln := &obs.PlanNode{Name: "Limit", Detail: fmt.Sprintf("TOP %d", stmt.Top), Children: []*obs.PlanNode{plan}}
		root = ps.batch(&batchLimitOp{child: root, n: stmt.Top, clip: cs.where == nil}, ln)
		plan = ln
	}
	drain := &batchDrainOp{
		root:      root,
		qctx:      opts.Ctx,
		batchSize: opts.batchSize(),
		b:         newBatch(len(tbl.Schema().Columns)),
	}
	plan.AddExtra("pipeline", "batch")
	return &pipeline{root: drain, columns: cs.columns, plan: plan}, nil
}

// buildRowPipeline assembles the legacy row-at-a-time operator tree.
func buildRowPipeline(db *engine.DB, tbl *engine.Table, stmt *SelectStmt, residual Expr,
	cs *compiledStmt, snap *engine.Snapshot, lo, hi int64, bounds keyBounds, opts ExecOptions, ps *planState) *pipeline {
	var root operator
	var plan *obs.PlanNode
	if cs.aggregate && !bounds.empty {
		if plo, phi, workers, ok := parallelAggSpan(tbl, snap, lo, hi, opts); ok {
			plan = parallelAggPlanNode(tbl.Name(), plo, phi, workers, residual)
			root = ps.row(&parallelAggOp{
				tbl:       tbl,
				snap:      snap,
				qctx:      opts.Ctx,
				lo:        plo,
				hi:        phi,
				workers:   workers,
				accs:      cs.accs,
				newWorker: newWorkerFunc(db, tbl, stmt, residual, snap),
			}, plan)
		}
	}
	if root == nil {
		plan = scanPlanNode(tbl.Name(), bounds)
		root = ps.row(&scanOp{tbl: tbl, snap: snap, qctx: opts.Ctx, lo: lo, hi: hi}, plan)
		if cs.where != nil {
			fn := &obs.PlanNode{Name: "Filter", Detail: ExprString(residual), Children: []*obs.PlanNode{plan}}
			root = ps.row(&filterOp{child: root, qctx: opts.Ctx, pred: cs.where}, fn)
			plan = fn
		}
		if cs.aggregate {
			an := &obs.PlanNode{Name: "Aggregate", Children: []*obs.PlanNode{plan}}
			root = ps.row(&aggregateOp{child: root, qctx: opts.Ctx, accs: cs.accs}, an)
			plan = an
		}
	}
	plan = projectPlanNode(cs.columns, plan)
	root = ps.row(&projectOp{child: root, items: cs.items}, plan)
	if stmt.Top > 0 {
		ln := &obs.PlanNode{Name: "Limit", Detail: fmt.Sprintf("TOP %d", stmt.Top), Children: []*obs.PlanNode{plan}}
		root = ps.row(&limitOp{child: root, n: stmt.Top}, ln)
		plan = ln
	}
	plan.AddExtra("pipeline", "row")
	return &pipeline{root: root, columns: cs.columns, plan: plan}
}

// newWorkerFunc builds the per-worker compile closure of a parallel
// aggregate scan. Compiled expressions are stateful (argument buffers,
// batch scratch vectors), so every worker compiles its own copies.
func newWorkerFunc(db *engine.DB, tbl *engine.Table, stmt *SelectStmt, residual Expr, snap *engine.Snapshot) func() (workerState, error) {
	return func() (workerState, error) {
		ws, err := compileStmt(db, tbl, stmt, residual, snap)
		if err != nil {
			return workerState{}, err
		}
		return workerState{pred: ws.where, accs: ws.accs}, nil
	}
}

// parallelAggSpan decides whether an aggregate scan is worth running in
// parallel, returning the key range clipped to the keys actually present
// so the partitions cover real data. Row count and key bounds come from
// the snapshot, so the decision and the partition layout match the data
// the workers will actually scan.
func parallelAggSpan(tbl *engine.Table, snap *engine.Snapshot, lo, hi int64, opts ExecOptions) (int64, int64, int, bool) {
	workers := opts.workers()
	if workers < 2 || tbl.RowsAt(snap) < opts.threshold() {
		return 0, 0, 0, false
	}
	minKey, maxKey, ok, err := tbl.KeyBoundsAt(snap)
	if err != nil || !ok {
		return 0, 0, 0, false
	}
	if minKey > lo {
		lo = minKey
	}
	if maxKey < hi {
		hi = maxKey
	}
	if lo > hi {
		return 0, 0, 0, false
	}
	// A narrow pushed-down range caps the rows at span+1 no matter how
	// big the table is — not worth the partition and goroutine setup.
	if span := uint64(hi) - uint64(lo); span != ^uint64(0) && span+1 < uint64(opts.threshold()) {
		return 0, 0, 0, false
	}
	return lo, hi, workers, true
}
