package sqlmini

import (
	"errors"
	"testing"

	"sqlarray/internal/arraysugar"
	"sqlarray/internal/btree"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

// registerArrayFuncs installs the handful of T-SQL array functions the
// DML tests use (tsql.RegisterAll would create an import cycle here).
func registerArrayFuncs(db *engine.DB) {
	vec := func(args []engine.Value) (engine.Value, error) {
		vals := make([]float64, len(args))
		for i, a := range args {
			f, err := a.AsFloat()
			if err != nil {
				return engine.Null, err
			}
			vals[i] = f
		}
		return engine.BinaryValue(core.Vector(vals...).Bytes()), nil
	}
	ivec := func(args []engine.Value) (engine.Value, error) {
		vals := make([]int, len(args))
		for i, a := range args {
			n, err := a.AsInt()
			if err != nil {
				return engine.Null, err
			}
			vals[i] = int(n)
		}
		return engine.BinaryValue(core.IntVector(vals...).Bytes()), nil
	}
	item := func(args []engine.Value) (engine.Value, error) {
		b, err := args[0].AsBinary()
		if err != nil {
			return engine.Null, err
		}
		a, err := core.Wrap(b)
		if err != nil {
			return engine.Null, err
		}
		i, err := args[1].AsInt()
		if err != nil {
			return engine.Null, err
		}
		f, err := a.Item(int(i))
		if err != nil {
			return engine.Null, err
		}
		return engine.FloatValue(f), nil
	}
	for n := 1; n <= 3; n++ {
		name := []string{"", "1", "2", "3"}[n]
		db.Funcs().Register("FloatArray.Vector_"+name, n, vec)
		db.Funcs().Register("IntArray.Vector_"+name, n, ivec)
	}
	db.Funcs().Register("FloatArray.Item_1", 2, item)
	db.Funcs().Register("FloatArrayMax.Item_1", 2, item)
}

func dmlDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewMemDB()
	registerArrayFuncs(db)
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
		engine.Column{Name: "v", Type: engine.ColVarBinary},
		engine.Column{Name: "m", Type: engine.ColVarBinaryMax},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", s); err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t *testing.T, db *engine.DB, sql string) *ExecResult {
	t.Helper()
	res, err := Execute(db, sql)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func TestInsertUpdateDeleteSQL(t *testing.T) {
	db := dmlDB(t)
	res := mustExec(t, db, `INSERT INTO t (id, x, v) VALUES
		(1, 1.5, FloatArray.Vector_3(1,2,3)),
		(2, 2.5, FloatArray.Vector_3(4,5,6)),
		(3, 3.5, NULL)`)
	if res.RowsAffected != 3 {
		t.Fatalf("INSERT affected %d rows, want 3", res.RowsAffected)
	}
	// Positional insert over the full schema.
	mustExec(t, db, `INSERT INTO t VALUES (4, 4.5, NULL, NULL)`)
	if got := scalarFloat(t, db, `SELECT COUNT(*) FROM t`); got != 4 {
		t.Fatalf("COUNT after inserts = %v", got)
	}

	// UPDATE with expression over the old row value.
	res = mustExec(t, db, `UPDATE t SET x = x * 10 WHERE id >= 2 AND id <= 3`)
	if res.RowsAffected != 2 {
		t.Fatalf("UPDATE affected %d rows, want 2", res.RowsAffected)
	}
	if got := scalarFloat(t, db, `SELECT SUM(x) FROM t`); got != 1.5+25+35+4.5 {
		t.Fatalf("SUM(x) after update = %v", got)
	}

	// DELETE with a residual (non-sargable) predicate.
	res = mustExec(t, db, `DELETE FROM t WHERE x > 20`)
	if res.RowsAffected != 2 {
		t.Fatalf("DELETE affected %d rows, want 2", res.RowsAffected)
	}
	if got := scalarFloat(t, db, `SELECT COUNT(*) FROM t`); got != 2 {
		t.Fatalf("COUNT after delete = %v", got)
	}
	// Duplicate key insert surfaces the engine error.
	if _, err := Execute(db, `INSERT INTO t VALUES (1, 0, NULL, NULL)`); !errors.Is(err, btree.ErrDuplicate) {
		t.Fatalf("duplicate insert error = %v", err)
	}
	if pins := db.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames left pinned", pins)
	}
}

// TestUpdateKeyRangePushdown: a sargable WHERE on the clustered key
// descends the tree instead of scanning the table — same assertion
// shape as the SELECT pushdown benchmark, on the UPDATE read phase.
func TestUpdateKeyRangePushdown(t *testing.T) {
	db := dmlDB(t)
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20000; i++ {
		if err := tbl.Insert([]engine.Value{
			engine.IntValue(i), engine.FloatValue(float64(i)), engine.Null, engine.Null,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Fatal(err)
	}
	db.Pool().ResetStats()
	mustExec(t, db, `UPDATE t SET x = 0 WHERE id = 17000`)
	point := db.Pool().Stats().LogicalReads

	if err := db.DropCleanBuffers(); err != nil {
		t.Fatal(err)
	}
	db.Pool().ResetStats()
	mustExec(t, db, `UPDATE t SET x = 0 WHERE x < -1`) // matches nothing, full scan
	full := db.Pool().Stats().LogicalReads

	if point*10 >= full {
		t.Fatalf("point UPDATE read %d pages vs full-scan UPDATE %d — pushdown not working", point, full)
	}
	t.Logf("point UPDATE: %d logical reads; full-scan UPDATE: %d", point, full)
}

// TestUpdateSubarraySugar drives the §8 assignment sugar end to end:
// arraysugar translates the subscripted SET target, the executor
// lowers it to an in-place update — chunk-writes only — for MAX
// columns and a row patch for short ones.
func TestUpdateSubarraySugar(t *testing.T) {
	db := dmlDB(t)
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	// Row 1: short inline 5-vector. Row 2: multi-chunk MAX array.
	short := core.Vector(0, 1, 2, 3, 4)
	big := make([]float64, 16000)
	for i := range big {
		big[i] = float64(i)
	}
	bigArr, err := core.FromFloat64s(core.Max, core.Float64, big, len(big))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]engine.Value{
		engine.IntValue(1), engine.FloatValue(0), engine.BinaryValue(short.Bytes()), engine.Null,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]engine.Value{
		engine.IntValue(2), engine.FloatValue(0), engine.Null, engine.BinaryMaxValue(bigArr.Bytes()),
	}); err != nil {
		t.Fatal(err)
	}
	cols := arraysugar.Columns{"v": "FloatArray", "m": "FloatArrayMax"}
	exec := func(q string) *ExecResult {
		t.Helper()
		translated, err := arraysugar.Translate(q, cols)
		if err != nil {
			t.Fatalf("translate %q: %v", q, err)
		}
		return mustExec(t, db, translated)
	}

	// Slice assignment on the short column.
	exec(`UPDATE t SET v[1:4] = FloatArray.Vector_3(10, 20, 30) WHERE id = 1`)
	if got := scalarFloat(t, db, `SELECT FloatArray.Item_1(v, 2) FROM t WHERE id = 1`); got != 20 {
		t.Fatalf("short slice assign: v[2] = %v, want 20", got)
	}
	if got := scalarFloat(t, db, `SELECT FloatArray.Item_1(v, 0) FROM t WHERE id = 1`); got != 0 {
		t.Fatalf("short slice assign touched v[0]: %v", got)
	}
	// Item assignment (scalar RHS) on the short column.
	exec(`UPDATE t SET v[0] = 99 WHERE id = 1`)
	if got := scalarFloat(t, db, `SELECT FloatArray.Item_1(v, 0) FROM t WHERE id = 1`); got != 99 {
		t.Fatalf("item assign: v[0] = %v, want 99", got)
	}

	// Slice assignment on the MAX column writes only the touched chunks.
	b0 := db.Blobs().Stats()
	exec(`UPDATE t SET m[8000:8003] = FloatArray.Vector_3(-1, -2, -3) WHERE id = 2`)
	touched := db.Blobs().Stats().ChunksWritten - b0.ChunksWritten
	nChunks := 16 // 16000 float64s = 128000 bytes over 8096-byte chunks
	if touched == 0 || touched >= uint64(nChunks) {
		t.Fatalf("MAX slice assign wrote %d chunks, want a small fraction of %d", touched, nChunks)
	}
	if got := scalarFloat(t, db, `SELECT FloatArrayMax.Item_1(m, 8001) FROM t WHERE id = 2`); got != -2 {
		t.Fatalf("MAX slice assign: m[8001] = %v, want -2", got)
	}
	if got := scalarFloat(t, db, `SELECT FloatArrayMax.Item_1(m, 7999) FROM t WHERE id = 2`); got != 7999 {
		t.Fatalf("MAX slice assign touched m[7999]: %v", got)
	}
	// Item assignment on the MAX column.
	exec(`UPDATE t SET m[0] = 123.25 WHERE id = 2`)
	if got := scalarFloat(t, db, `SELECT FloatArrayMax.Item_1(m, 0) FROM t WHERE id = 2`); got != 123.25 {
		t.Fatalf("MAX item assign: m[0] = %v, want 123.25", got)
	}
	if pins := db.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames left pinned", pins)
	}
}

func TestDMLParseErrors(t *testing.T) {
	db := dmlDB(t)
	for _, q := range []string{
		`INSERT INTO t VALUES (1, 2)`,              // arity mismatch
		`INSERT INTO t (id, nosuch) VALUES (1, 2)`, // unknown column
		`INSERT INTO t VALUES (x, 0, NULL, NULL)`,  // column ref in INSERT
		`UPDATE t SET COUNT(x) = 1`,                // unassignable target
		`UPDATE t SET x = SUM(x)`,                  // aggregate in SET
		`DELETE FROM t WHERE SUM(x) > 1`,           // aggregate in WHERE
		`UPDATE nosuch SET x = 1`,                  // unknown table
	} {
		if _, err := Execute(db, q); err == nil {
			t.Errorf("Execute(%q) succeeded, want error", q)
		}
	}
}
