package sqlmini

import (
	"fmt"
	"sort"
	"testing"
)

// TestMetricsSnapshotDump runs a small representative workload (bulk
// load, point lookup, range scan, full-table aggregate) and prints the
// engine-wide registry snapshot as parseable `metrics-snapshot:` lines.
// The CI benchmark-smoke step greps these into bench.txt so each run's
// artifact carries the I/O counters next to the ns/op numbers — a perf
// regression in the trend line can then be read against what the engine
// actually did (pages touched, WAL records, rows moved), not just how
// long it took.
func TestMetricsSnapshotDump(t *testing.T) {
	db, _ := bigDB(t, 20000)
	reg := db.Metrics()
	before := reg.Snapshot()

	for _, q := range []string{
		"SELECT v FROM big WHERE id = 7777",
		"SELECT id, v FROM big WHERE id >= 100 AND id < 1100",
		"SELECT COUNT(*), SUM(v) FROM big",
	} {
		if _, err := Run(db, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	d := reg.Snapshot().Delta(before)
	names := make([]string, 0, len(d))
	for name := range d {
		if d[name] == 0 {
			continue // keep the artifact to the counters the workload moved
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("workload moved no registry counters")
	}
	for _, name := range names {
		fmt.Printf("metrics-snapshot: name=%s value=%d\n", name, d[name])
	}
	// The lines above only matter if the snapshot reflects real work.
	for _, must := range []string{"pages.logical_reads", "sql.query_latency.count"} {
		if d.Get(must) == 0 {
			t.Errorf("%s = 0 after point + range + aggregate queries", must)
		}
	}
}
