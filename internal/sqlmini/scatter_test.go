package sqlmini

import (
	"math"
	"testing"

	"sqlarray/internal/engine"
)

// scatterParts builds a 4-way range-partitioned table "T"(id, x): keys
// 0..99 in member 0, 100..199 in member 1, and so on, x = id/2.
func scatterParts(t *testing.T) []Partition {
	t.Helper()
	parts := make([]Partition, 4)
	for p := 0; p < 4; p++ {
		db := engine.NewMemDB()
		s, err := engine.NewSchema(
			engine.Column{Name: "id", Type: engine.ColInt64},
			engine.Column{Name: "x", Type: engine.ColFloat64},
		)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable("T", s)
		if err != nil {
			t.Fatal(err)
		}
		var rows [][]engine.Value
		for i := int64(0); i < 100; i++ {
			id := int64(p)*100 + i
			rows = append(rows, []engine.Value{
				engine.IntValue(id), engine.FloatValue(float64(id) / 2),
			})
		}
		if _, err := tbl.BulkLoad(engine.NewValuesSource(rows), engine.BulkOptions{}); err != nil {
			t.Fatal(err)
		}
		lo, hi := int64(p)*100, int64(p)*100+99
		if p == 0 {
			lo = math.MinInt64
		}
		if p == 3 {
			hi = math.MaxInt64
		}
		parts[p] = Partition{DB: db, Lo: lo, Hi: hi}
	}
	return parts
}

func scatterScalar(t *testing.T, parts []Partition, q string) (float64, ScatterStats) {
	t.Helper()
	res, stats, err := ScatterRun(parts, q, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("ScatterRun(%q): %v", q, err)
	}
	v, err := res.Scalar()
	if err != nil {
		t.Fatalf("Scalar(%q): %v", q, err)
	}
	f, err := v.AsFloat()
	if err != nil {
		t.Fatalf("AsFloat(%q): %v", q, err)
	}
	return f, stats
}

func TestScatterAggregates(t *testing.T) {
	parts := scatterParts(t)
	if got, st := scatterScalar(t, parts, "SELECT COUNT(*) FROM T"); got != 400 || st.Scanned != 4 {
		t.Errorf("COUNT(*) = %g over %d partitions, want 400 over 4", got, st.Scanned)
	}
	// SUM(id) over 0..399.
	if got, _ := scatterScalar(t, parts, "SELECT SUM(id) FROM T"); got != 399*400/2 {
		t.Errorf("SUM(id) = %g, want %d", got, 399*400/2)
	}
	// AVG must merge sums and counts, not average the averages: restrict
	// to an asymmetric key range so per-partition row counts differ
	// (100+100+51 rows) and a mean-of-means would be wrong.
	got, st := scatterScalar(t, parts, "SELECT AVG(x) FROM T WHERE id <= 250")
	want := float64(250*251/2) / 2 / 251
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AVG(x) WHERE id <= 250 = %g, want %g", got, want)
	}
	if st.Scanned != 3 {
		t.Errorf("id <= 250 scanned %d partitions, want 3 (member 3 pruned)", st.Scanned)
	}
	if got, _ := scatterScalar(t, parts, "SELECT MAX(id) FROM T WHERE id < 130"); got != 129 {
		t.Errorf("MAX(id) WHERE id < 130 = %g, want 129", got)
	}
	// MIN over a range no partition covers: zero rows, NULL result.
	res, st, err := ScatterRun(parts, "SELECT MIN(x) FROM T WHERE id > 1000 AND id < 900", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 0 {
		t.Errorf("contradictory bounds scanned %d partitions, want 0", st.Scanned)
	}
	v, err := res.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Errorf("MIN over empty range = %v, want NULL", v)
	}
}

func TestScatterPruning(t *testing.T) {
	parts := scatterParts(t)
	// A point lookup touches exactly one member.
	res, st, err := ScatterRun(parts, "SELECT x FROM T WHERE id = 217", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 4 || st.Scanned != 1 {
		t.Fatalf("point lookup scanned %d/%d partitions, want 1/4", st.Scanned, st.Partitions)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].F != 108.5 {
		t.Fatalf("rows = %v, want one row x=108.5", res.Rows)
	}
	// A range straddling one split touches two members.
	_, st, err = ScatterRun(parts, "SELECT id FROM T WHERE id >= 190 AND id <= 210", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 2 {
		t.Errorf("straddling range scanned %d partitions, want 2", st.Scanned)
	}
}

func TestScatterSelectOrderAndTop(t *testing.T) {
	parts := scatterParts(t)
	// Rows gather in partition order, which is clustered-key order.
	res, _, err := ScatterRun(parts, "SELECT id FROM T WHERE x >= 40", ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 320 {
		t.Fatalf("rows = %d, want 320", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].I != int64(80+i) {
			t.Fatalf("row %d: id = %d, want %d (global key order)", i, row[0].I, 80+i)
		}
	}
	// TOP pushes into every partition and caps the gathered whole.
	res, _, err = ScatterRun(parts, "SELECT TOP 150 id FROM T", ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 150 {
		t.Fatalf("TOP 150 returned %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].I != int64(i) {
			t.Fatalf("TOP row %d: id = %d, want %d", i, row[0].I, i)
		}
	}
	// All partitions pruned (contradictory sargable bounds): empty
	// result, named columns. An open-ended range like id > 5000 still
	// scans the last member — its range runs to MaxInt64.
	res, st, err := ScatterRun(parts, "SELECT id AS k FROM T WHERE id > 10 AND id < 5", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 0 || len(res.Rows) != 0 {
		t.Fatalf("pruned-all query: scanned %d, rows %d", st.Scanned, len(res.Rows))
	}
	if len(res.Columns) != 1 || res.Columns[0] != "k" {
		t.Fatalf("pruned-all columns = %v, want [k]", res.Columns)
	}
}
