package sqlmini

import (
	"fmt"
	"sync"
	"testing"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// This file is the tentpole's regression suite: readers ride snapshots
// instead of the (removed) table latch, so a scan opened before a
// commit must see exactly the pre-commit data, writers must never wait
// for an open scan, and when everything is released the version store
// and pin counts must drain to zero.

// openTestDB builds a WAL-backed in-memory database with one table of
// rows sequential keys, x = xInit for every row, and m a single-chunk
// 64-float MAX array.
func openTestDB(t *testing.T, rows int, xInit float64) (*engine.DB, *engine.Table) {
	t.Helper()
	l, err := wal.Open(wal.NewMemStorage(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(engine.Options{Disk: pages.NewMemDisk(), PoolPages: 1024, WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	registerArrayFuncs(db)
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
		engine.Column{Name: "m", Type: engine.ColVarBinaryMax},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", s)
	if err != nil {
		t.Fatal(err)
	}
	arr := make([]float64, 64)
	for i := 0; i < rows; i++ {
		for j := range arr {
			arr[j] = float64(j)
		}
		a, err := core.FromFloat64s(core.Max, core.Float64, arr, len(arr))
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert([]engine.Value{
			engine.IntValue(int64(i)), engine.FloatValue(xInit), engine.BinaryMaxValue(a.Bytes()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db, tbl
}

// assertDrained checks the end-of-test invariants: no pinned frames, no
// active snapshots, and an empty page version store.
func assertDrained(t *testing.T, db *engine.DB) {
	t.Helper()
	if n := db.Pool().PinnedFrames(); n != 0 {
		t.Fatalf("%d frames left pinned", n)
	}
	if n := db.Pool().ActiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshots left unreleased", n)
	}
	if n := db.Pool().VersionPages(); n != 0 {
		t.Fatalf("version store leaked %d page versions", n)
	}
}

// TestSnapshotIsolationGolden is the deterministic half: a scan opened
// before a commit streams exactly the pre-commit rows even though the
// writer commits — without blocking — while the scan is mid-stream, and
// a scan opened after the commit sees all of it.
func TestSnapshotIsolationGolden(t *testing.T) {
	for _, rowPipe := range []bool{false, true} {
		name := "batch"
		if rowPipe {
			name = "row"
		}
		t.Run(name, func(t *testing.T) {
			const rows = 300
			db, _ := openTestDB(t, rows, 1.0)
			opts := ExecOptions{RowPipeline: rowPipe}

			scan, err := QueryWith(db, `SELECT id, x, m FROM t`, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Pull a handful of rows so the scan is genuinely mid-stream
			// with a pinned leaf below it.
			seen := 0
			for seen < 10 && scan.Next() {
				seen++
			}

			// The writer commits while the scan is open. Under the old
			// reader-latch design this UPDATE would deadlock against the
			// scan's RLock; snapshot reads let it run to completion here.
			if _, err := Execute(db, `UPDATE t SET x = 2`); err != nil {
				t.Fatalf("writer blocked or failed mid-scan: %v", err)
			}
			if _, err := Execute(db,
				`UPDATE t SET FloatArrayMax.Subarray(m, IntArray.Vector_1(0), IntArray.Vector_1(1), 1) = FloatArray.Vector_1(-1) WHERE id >= 0`); err != nil {
				t.Fatalf("blob writer blocked or failed mid-scan: %v", err)
			}
			if _, err := Execute(db, `DELETE FROM t WHERE id >= 200`); err != nil {
				t.Fatalf("delete blocked or failed mid-scan: %v", err)
			}

			// The in-flight scan still sees exactly the pre-commit state:
			// every row, x = 1, m[0] = 0.
			for scan.Next() {
				seen++
				row := scan.Row()
				if row[1].F != 1.0 {
					t.Fatalf("pre-commit scan saw post-commit x = %v at id %v", row[1].F, row[0].I)
				}
				a, err := core.Wrap(row[2].B)
				if err != nil {
					t.Fatal(err)
				}
				if got, _ := a.Item(0); got != 0 {
					t.Fatalf("pre-commit scan saw post-commit blob write m[0] = %v at id %v", got, row[0].I)
				}
			}
			if err := scan.Err(); err != nil {
				t.Fatal(err)
			}
			if err := scan.Close(); err != nil {
				t.Fatal(err)
			}
			if seen != rows {
				t.Fatalf("pre-commit scan yielded %d rows, want %d", seen, rows)
			}

			// A fresh scan sees the commits: 200 rows, x = 2, m[0] = -1.
			res, err := RunWith(db, `SELECT COUNT(*), MIN(x), MAX(x) FROM t`, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows[0][0].I != 200 || res.Rows[0][1].F != 2 || res.Rows[0][2].F != 2 {
				t.Fatalf("post-commit scan: count=%v min=%v max=%v, want 200/2/2",
					res.Rows[0][0].I, res.Rows[0][1].F, res.Rows[0][2].F)
			}
			vals, err := RunWith(db, `SELECT m FROM t WHERE id = 0`, opts)
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.Wrap(vals.Rows[0][0].B)
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := a.Item(0); got != -1 {
				t.Fatalf("post-commit scan missed blob write: m[0] = %v", got)
			}
			assertDrained(t, db)
		})
	}
}

// TestSharedSnapshotAcrossQueries pins one explicit snapshot across
// several queries: statements committed after the snapshot was acquired
// stay invisible to every query run against it.
func TestSharedSnapshotAcrossQueries(t *testing.T) {
	db, _ := openTestDB(t, 100, 1.0)
	snap := db.Snapshot()
	if _, err := Execute(db, `UPDATE t SET x = 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(db, `DELETE FROM t WHERE id < 50`); err != nil {
		t.Fatal(err)
	}
	opts := ExecOptions{Snapshot: snap}
	res, err := RunWith(db, `SELECT COUNT(*), MAX(x) FROM t`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 100 || res.Rows[0][1].F != 1 {
		t.Fatalf("snapshot query: count=%v max=%v, want 100/1", res.Rows[0][0].I, res.Rows[0][1].F)
	}
	// Same snapshot, second query — still the old view.
	res, err = RunWith(db, `SELECT COUNT(*) FROM t WHERE id < 50`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 50 {
		t.Fatalf("snapshot query after delete: count=%v, want 50", res.Rows[0][0].I)
	}
	// A plain query sees the live state.
	res, err = Run(db, `SELECT COUNT(*), MAX(x) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 50 || res.Rows[0][1].F != 5 {
		t.Fatalf("live query: count=%v max=%v, want 50/5", res.Rows[0][0].I, res.Rows[0][1].F)
	}
	snap.Release()
	assertDrained(t, db)
}

// TestRowsCloseMidStreamReleasesPins closes a streaming query mid-batch
// while its Batch still owns zero-copy blob pins from MAX-column
// resolves, and checks that Close releases every pin and the snapshot —
// not just recycle on the next fill.
func TestRowsCloseMidStreamReleasesPins(t *testing.T) {
	db, _ := openTestDB(t, 200, 1.0)
	// Small batches so the projection resolves MAX blobs zero-copy into
	// batch-owned pins before we abandon the stream.
	rows, err := QueryWith(db, `SELECT id, m FROM t`, ExecOptions{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	assertDrained(t, db)

	// Same through the row pipeline (pins held per-row rather than
	// per-batch; the scan's leaf pin is the interesting release there).
	rows, err = QueryWith(db, `SELECT id, m FROM t`, ExecOptions{RowPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	assertDrained(t, db)
}

// TestSnapshotStressMixedScanDML is the racing half (run with -race):
// writers continuously commit whole-table UPDATEs (every row's x moves
// together, plus a blob subarray write) while readers run parallel
// aggregate scans and zero-copy MAX projections. Snapshot isolation
// makes "MIN(x) == MAX(x) and COUNT == rows" an invariant of every
// read, no matter how many commits land mid-scan; any torn read fails
// it. At the end, pins, snapshots and the version store drain to zero.
func TestSnapshotStressMixedScanDML(t *testing.T) {
	const rows = 400
	db, _ := openTestDB(t, rows, 0)
	opts := ExecOptions{Parallelism: 4, ParallelThreshold: 64, BatchSize: 64}

	iters := 40
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Readers: the consistency invariant plus a mid-stream abandon that
	// exercises early Close with live pins under concurrency.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := RunWith(db, `SELECT COUNT(*), MIN(x), MAX(x) FROM t`, opts)
				if err != nil {
					fail(fmt.Errorf("reader agg: %w", err))
					return
				}
				count, lo, hi := res.Rows[0][0].I, res.Rows[0][1].F, res.Rows[0][2].F
				if count != rows || lo != hi {
					fail(fmt.Errorf("torn read: count=%d min=%v max=%v", count, lo, hi))
					return
				}
				scan, err := QueryWith(db, `SELECT id, x, m FROM t`, opts)
				if err != nil {
					fail(fmt.Errorf("reader scan: %w", err))
					return
				}
				first := -1.0
				n := 0
				for scan.Next() {
					row := scan.Row()
					if first < 0 {
						first = row[1].F
					} else if row[1].F != first {
						fail(fmt.Errorf("torn scan: x=%v then %v", first, row[1].F))
					}
					n++
					if r == 0 && n > 20 {
						break // abandon mid-stream: Close must still drain pins
					}
				}
				if err := scan.Err(); err != nil {
					fail(fmt.Errorf("reader scan rows: %w", err))
				}
				if err := scan.Close(); err != nil {
					fail(fmt.Errorf("reader scan close: %w", err))
				}
			}
		}(r)
	}

	// Writer: one committed generation per iteration — every row's x
	// advances together, and one blob gets an in-place subarray write.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := Execute(db, `UPDATE t SET x = x + 1`); err != nil {
				fail(fmt.Errorf("writer update: %w", err))
				return
			}
			if _, err := Execute(db, fmt.Sprintf(
				`UPDATE t SET FloatArrayMax.Subarray(m, IntArray.Vector_1(4), IntArray.Vector_1(2), 1) = FloatArray.Vector_2(%d, %d) WHERE id = %d`,
				i, i+1, i%rows)); err != nil {
				fail(fmt.Errorf("writer subarray: %w", err))
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	assertDrained(t, db)

	// Final state is the last generation everywhere.
	res, err := Run(db, `SELECT COUNT(*), MIN(x), MAX(x) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != rows || res.Rows[0][1].F != float64(iters) || res.Rows[0][2].F != float64(iters) {
		t.Fatalf("final state: count=%v min=%v max=%v, want %d/%d/%d",
			res.Rows[0][0].I, res.Rows[0][1].F, res.Rows[0][2].F, rows, iters, iters)
	}
}
