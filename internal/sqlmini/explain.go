package sqlmini

import (
	"fmt"
	"strings"
	"time"

	"sqlarray/internal/engine"
	"sqlarray/internal/obs"
)

// EXPLAIN and EXPLAIN ANALYZE.
//
// EXPLAIN compiles the statement through the real planner — sargable
// analysis, parallel-aggregate decision, batch-vs-row selection all
// run — and renders the plan tree the executor would use, without
// opening the pipeline. EXPLAIN ANALYZE executes the statement with
// every operator wrapped in an analyze shim that counts rows and
// batches, accumulates wall time, and attributes buffer-pool page and
// blob-chunk reads to its subtree by sampling the database's live
// counters around each child call. Metrics are inclusive of children
// (the root's totals equal the whole query's pool delta); attribution
// assumes no concurrent query is driving the same counters, the usual
// profiling caveat.

// batchAnalyzeOp instruments one batch operator. It is transparent:
// open/close forward untouched, nextBatch samples the I/O counters and
// the clock around the child call.
type batchAnalyzeOp struct {
	child  batchOperator
	node   *obs.PlanNode
	sample func() (uint64, uint64)
}

func (a *batchAnalyzeOp) open() error {
	p0, c0 := a.sample()
	start := time.Now()
	err := a.child.open()
	a.node.Time += time.Since(start)
	p1, c1 := a.sample()
	a.node.Pages += p1 - p0
	a.node.Chunks += c1 - c0
	return err
}

func (a *batchAnalyzeOp) nextBatch(b *Batch) (int, error) {
	p0, c0 := a.sample()
	start := time.Now()
	n, err := a.child.nextBatch(b)
	a.node.Time += time.Since(start)
	p1, c1 := a.sample()
	a.node.Pages += p1 - p0
	a.node.Chunks += c1 - c0
	if n > 0 {
		a.node.Rows += int64(n)
		a.node.Batches++
	}
	return n, err
}

func (a *batchAnalyzeOp) close() error { return a.child.close() }

// rowAnalyzeOp is batchAnalyzeOp for the row-at-a-time pipeline; every
// produced row counts as its own "batch" of one.
type rowAnalyzeOp struct {
	child  operator
	node   *obs.PlanNode
	sample func() (uint64, uint64)
}

func (a *rowAnalyzeOp) open() error {
	p0, c0 := a.sample()
	start := time.Now()
	err := a.child.open()
	a.node.Time += time.Since(start)
	p1, c1 := a.sample()
	a.node.Pages += p1 - p0
	a.node.Chunks += c1 - c0
	return err
}

func (a *rowAnalyzeOp) next() (*rowCtx, error) {
	p0, c0 := a.sample()
	start := time.Now()
	ctx, err := a.child.next()
	a.node.Time += time.Since(start)
	p1, c1 := a.sample()
	a.node.Pages += p1 - p0
	a.node.Chunks += c1 - c0
	if ctx != nil {
		a.node.Rows++
		a.node.Batches++
	}
	return ctx, err
}

func (a *rowAnalyzeOp) close() error { return a.child.close() }

// Explain compiles stmt against db and returns the plan tree the
// executor would run, without executing it. The snapshot the planner
// consults (row counts steer the parallel-aggregate decision) is
// released before returning unless the caller provided one.
func Explain(db *engine.DB, stmt *SelectStmt, opts ExecOptions) (*obs.PlanNode, error) {
	opts.Trace = nil
	opts.SlowQueryThreshold = 0
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	snap := opts.Snapshot
	if snap == nil {
		snap = db.Snapshot()
		defer snap.Release()
	}
	// The operators are constructed but never opened: no cursors, no
	// pins, nothing to close.
	pl, err := buildPipeline(db, tbl, stmt, snap, opts)
	if err != nil {
		return nil, err
	}
	return pl.plan, nil
}

// ExplainAnalyze executes stmt with per-operator instrumentation,
// discards the result rows, and returns the completed trace: annotated
// plan, wall time, registry deltas.
func ExplainAnalyze(db *engine.DB, stmt *SelectStmt, opts ExecOptions) (*obs.QueryTrace, error) {
	trace := opts.Trace
	if trace == nil {
		trace = &obs.QueryTrace{}
		opts.Trace = trace
	}
	rows, err := StreamWith(db, stmt, opts)
	if err != nil {
		return nil, err
	}
	for rows.Next() {
	}
	drainErr := rows.Err()
	if err := rows.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return nil, drainErr
	}
	return trace, nil
}

// execExplain runs an EXPLAIN [ANALYZE] statement, returning the
// rendered plan in ExecResult.Plan.
func execExplain(db *engine.DB, st *ExplainStmt, opts ExecOptions) (*ExecResult, error) {
	if !st.Analyze {
		plan, err := Explain(db, st.Stmt, opts)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Plan: plan.Render()}, nil
	}
	trace, err := ExplainAnalyze(db, st.Stmt, opts)
	if err != nil {
		return nil, err
	}
	return &ExecResult{Plan: trace.Plan.Render() + "\n" + analyzeSummary(trace)}, nil
}

// analyzeSummary renders the trailer lines under an EXPLAIN ANALYZE
// tree: total time plus the registry deltas the query caused.
func analyzeSummary(t *obs.QueryTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Execution time: %s\n", t.Duration.Round(time.Microsecond))
	fmt.Fprintf(&b, "Pages read: %d (physical %d)\n",
		t.Delta.Get("pages.logical_reads"), t.Delta.Get("pages.physical_reads"))
	fmt.Fprintf(&b, "Blob chunk reads: %d\n", t.Delta.Get("blob.chunk_reads"))
	fmt.Fprintf(&b, "WAL records: %d", t.Delta.Get("wal.records"))
	return b.String()
}

// selectString reconstructs the statement text for traces; callers that
// parsed from source never kept the original string.
func selectString(stmt *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if stmt.Top > 0 {
		fmt.Fprintf(&b, "TOP %d ", stmt.Top)
	}
	for i, it := range stmt.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ExprString(it.Expr))
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(stmt.Table)
	if stmt.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(ExprString(stmt.Where))
	}
	return b.String()
}
