package sqlmini

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sqlarray/internal/engine"
)

// referenceRun is the pre-pipeline executor (materialize-everything full
// scan via Table.Scan, no pushdown, no parallelism), kept here as the
// golden oracle for the streaming executor.
func referenceRun(db *engine.DB, query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	cs, err := compileStmt(db, tbl, stmt, stmt.Where, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cs.columns}
	if cs.aggregate {
		ctx := &rowCtx{}
		err := tbl.Scan(func(key int64, row *engine.RowView) (bool, error) {
			ctx.key, ctx.row = key, row
			if cs.where != nil {
				ok, err := cs.where.eval(ctx)
				if err != nil {
					return false, err
				}
				if !truthy(ok) {
					return true, nil
				}
			}
			for _, a := range cs.accs {
				if err := a.add(ctx); err != nil {
					return false, err
				}
			}
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		ctx.aggVals = make([]engine.Value, len(cs.accs))
		for i, a := range cs.accs {
			ctx.aggVals[i] = a.result()
		}
		out := make([]engine.Value, len(cs.items))
		for i, it := range cs.items {
			v, err := it.eval(ctx)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
		return res, nil
	}
	ctx := &rowCtx{}
	err = tbl.Scan(func(key int64, row *engine.RowView) (bool, error) {
		ctx.key, ctx.row = key, row
		if cs.where != nil {
			ok, err := cs.where.eval(ctx)
			if err != nil {
				return false, err
			}
			if !truthy(ok) {
				return true, nil
			}
		}
		out := make([]engine.Value, len(cs.items))
		for i, it := range cs.items {
			v, err := it.eval(ctx)
			if err != nil {
				return false, err
			}
			if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
				v.B = append([]byte(nil), v.B...)
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
		if stmt.Top > 0 && int64(len(res.Rows)) >= stmt.Top {
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func valueEq(a, b engine.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case 0:
		return true
	case engine.ColInt64:
		return a.I == b.I
	case engine.ColFloat64:
		return a.F == b.F || (a.F != a.F && b.F != b.F) // NaN == NaN here
	case engine.ColVarBinary, engine.ColVarBinaryMax:
		return bytes.Equal(a.B, b.B)
	}
	return false
}

func resultEq(a, b *Result) string {
	if strings.Join(a.Columns, "|") != strings.Join(b.Columns, "|") {
		return fmt.Sprintf("columns %v vs %v", a.Columns, b.Columns)
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("%d rows vs %d rows", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return fmt.Sprintf("row %d width %d vs %d", i, len(a.Rows[i]), len(b.Rows[i]))
		}
		for j := range a.Rows[i] {
			if !valueEq(a.Rows[i][j], b.Rows[i][j]) {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	return ""
}

// goldenQueries covers every query shape the package tests exercise,
// plus the sargable forms the planner pushes down.
var goldenQueries = []string{
	"SELECT COUNT(*) FROM Tscalar",
	"SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)",
	"SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)",
	"SELECT AVG(v1) FROM Tscalar",
	"SELECT MIN(v2) FROM Tscalar",
	"SELECT MAX(v2) FROM Tscalar",
	"SELECT COUNT(v1) FROM Tscalar",
	"SELECT SUM(v1) / COUNT(*) FROM Tscalar",
	"SELECT SUM(v1 + v2) FROM Tscalar",
	"SELECT 2 * SUM(v1) FROM Tscalar",
	"SELECT COUNT(*), SUM(v1), MIN(v1), MAX(v1) FROM Tscalar",
	"SELECT COUNT(*) FROM Tscalar WHERE v1 >= 50",
	"SELECT COUNT(*) FROM Tscalar WHERE v1 >= 10 AND v1 < 20",
	"SELECT COUNT(*) FROM Tscalar WHERE v1 = 5 OR v1 = 7",
	"SELECT COUNT(*) FROM Tscalar WHERE NOT v1 < 90",
	"SELECT COUNT(*) FROM Tscalar WHERE v1 <> 0",
	"SELECT SUM(v1) FROM Tscalar WHERE id % 2 = 0",
	"SELECT id, v1 * 2 AS doubled FROM Tscalar WHERE id < 5",
	"SELECT TOP 7 id FROM Tscalar",
	"SELECT SUM(dbo.EmptyFunction(b, 0)) FROM Tscalar WITH (NOLOCK)",
	"SELECT SUM(dbo.Twice(v1)) FROM Tscalar",
	"SELECT COUNT(*) n FROM Tscalar",
	"SELECT TOP 1 -v1 + 3 * 2 FROM Tscalar WHERE id = 1",
	"SELECT TOP 1 (v1 + 3) * 2 FROM Tscalar WHERE id = 1",
	"SELECT TOP 1 10 - 4 - 3 FROM Tscalar",
	"SELECT TOP 1 7 / 2 FROM Tscalar",
	// Sargable key predicates, in every operator and orientation.
	"SELECT v1 FROM Tscalar WHERE id = 42",
	"SELECT v1 FROM Tscalar WHERE id >= 90",
	"SELECT id FROM Tscalar WHERE id > 10 AND id <= 15",
	"SELECT id FROM Tscalar WHERE 95 <= id",
	"SELECT id FROM Tscalar WHERE 42 = id",
	"SELECT id FROM Tscalar WHERE id < 4",
	"SELECT id, v1 FROM Tscalar WHERE id >= 20 AND id < 30 AND v1 <> 25",
	"SELECT COUNT(*) FROM Tscalar WHERE id >= 10 AND id <= 20",
	"SELECT SUM(v1) FROM Tscalar WHERE id >= 10 AND id <= 20 AND id % 2 = 0",
	"SELECT COUNT(*) FROM Tscalar WHERE id = 5 AND id = 7", // contradiction
	"SELECT id FROM Tscalar WHERE id > 10.5 AND id < 13.5", // fractional bounds
	"SELECT id FROM Tscalar WHERE id = 10.5",               // fractional point: empty
	"SELECT id FROM Tscalar WHERE id >= -3",
	"SELECT id FROM Tscalar WHERE -1 >= id OR id >= 98", // OR: not sargable
	"SELECT b FROM Tscalar WHERE id = 3",                // binary materialization
	"SELECT TOP 3 id FROM Tscalar WHERE id >= 50",
	"SELECT id FROM Tscalar LIMIT 4",
	"SELECT id FROM Tscalar WHERE id >= 95 LIMIT 10",
	// Logic over aggregate results (row-wise evaluation above the
	// aggregate in the batch pipeline).
	"SELECT COUNT(*) > 0 AND SUM(v1) > 4000 FROM Tscalar",
	"SELECT NOT COUNT(*) FROM Tscalar",
	// Binary values crossing batch boundaries.
	"SELECT id, b FROM Tscalar WHERE id >= 3 AND id < 9",
	"SELECT COUNT(*) FROM Tscalar WHERE b = 'x'",
	// Short-circuit logic mixing UDFs and columns in the residual filter.
	"SELECT id FROM Tscalar WHERE v1 < 5 AND dbo.Twice(v1) > 2",
	"SELECT id FROM Tscalar WHERE v1 >= 97 OR dbo.Twice(v1) < 4",
	// TOP over an aggregate (vacuous limit) and over a residual filter
	// (limit must truncate a surplus batch instead of clipping the scan).
	"SELECT TOP 1 SUM(v1) FROM Tscalar",
	"SELECT TOP 4 id FROM Tscalar WHERE v1 % 3 = 0",
	"SELECT id FROM Tscalar WHERE v2 >= 500 LIMIT 7",
	// BIGINT pairs compare exactly past 2^53 in every executor (the
	// literal is unpushable, so this exercises the residual compare).
	"SELECT COUNT(*) FROM Tscalar WHERE id <> 9007199254740993",
}

// TestGoldenEquivalence asserts that every execution strategy — the row
// pipeline, the batch pipeline at the default and at a tiny batch size
// (exercising batch-boundary handling), materialized and streamed —
// matches the reference full-scan executor on every covered query shape,
// and that no strategy leaks a buffer-pool pin after Close.
func TestGoldenEquivalence(t *testing.T) {
	db := testDB(t)
	modes := []struct {
		name string
		opts ExecOptions
	}{
		{"row", ExecOptions{RowPipeline: true}},
		{"batch", ExecOptions{}},
		{"batch3", ExecOptions{BatchSize: 3}},
	}
	for _, q := range goldenQueries {
		want, err := referenceRun(db, q)
		if err != nil {
			t.Fatalf("reference(%q): %v", q, err)
		}
		for _, m := range modes {
			got, err := RunWith(db, q, m.opts)
			if err != nil {
				t.Fatalf("%s Run(%q): %v", m.name, q, err)
			}
			if diff := resultEq(want, got); diff != "" {
				t.Errorf("%s Run(%q): %s", m.name, q, diff)
			}
			rows, err := QueryWith(db, q, m.opts)
			if err != nil {
				t.Fatalf("%s Query(%q): %v", m.name, q, err)
			}
			streamed := &Result{Columns: rows.Columns()}
			for rows.Next() {
				streamed.Rows = append(streamed.Rows, rows.Row())
			}
			if err := rows.Err(); err != nil {
				t.Fatalf("%s Query(%q) stream: %v", m.name, q, err)
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("%s Close(%q): %v", m.name, q, err)
			}
			if diff := resultEq(want, streamed); diff != "" {
				t.Errorf("%s Query(%q): %s", m.name, q, diff)
			}
			if got := db.Pool().PinnedFrames(); got != 0 {
				t.Fatalf("%s %q: PinnedFrames after Close = %d, want 0", m.name, q, got)
			}
		}
	}
}

// TestRowsCloseSemantics pins the Rows contract for both pipelines:
// Close mid-stream (with leaf pages still pinned) releases every pin,
// Close is idempotent, and Next after Close reports false instead of
// touching the torn-down pipeline.
func TestRowsCloseSemantics(t *testing.T) {
	db := wideDB(t, 3000)
	for _, m := range []struct {
		name string
		opts ExecOptions
	}{
		{"row", ExecOptions{RowPipeline: true}},
		{"batch", ExecOptions{}},
	} {
		t.Run(m.name, func(t *testing.T) {
			rows, err := QueryWith(db, "SELECT id, v1 FROM T", m.opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if !rows.Next() {
					t.Fatal("short stream")
				}
			}
			keep := rows.Row()
			if err := rows.Close(); err != nil {
				t.Fatalf("Close mid-stream: %v", err)
			}
			if got := db.Pool().PinnedFrames(); got != 0 {
				t.Fatalf("PinnedFrames after mid-stream Close = %d, want 0", got)
			}
			for i := 0; i < 3; i++ {
				if rows.Next() {
					t.Fatal("Next after Close must return false")
				}
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if err := rows.Err(); err != nil {
				t.Fatalf("Err after Close: %v", err)
			}
			// The row yielded before Close stays valid (materialized).
			if len(keep) != 2 || keep[0].Kind != engine.ColInt64 {
				t.Fatalf("retained row corrupted after Close: %v", keep)
			}
			// Close before any Next is also fine.
			rows, err = QueryWith(db, "SELECT id FROM T", m.opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := rows.Close(); err != nil {
				t.Fatal(err)
			}
			if rows.Next() {
				t.Fatal("Next on never-advanced closed Rows must return false")
			}
			if got := db.Pool().PinnedFrames(); got != 0 {
				t.Fatalf("PinnedFrames after immediate Close = %d, want 0", got)
			}
		})
	}
}

// wideDB builds a table large enough to span many leaf pages: n rows of
// (id, v1, v2, pad) where pad is a 100-byte filler.
func wideDB(t testing.TB, n int64) *engine.DB {
	t.Helper()
	db := engine.NewMemDB()
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v1", Type: engine.ColFloat64},
		engine.Column{Name: "v2", Type: engine.ColFloat64},
		engine.Column{Name: "pad", Type: engine.ColVarBinary},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("T", s)
	if err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, 100)
	for i := int64(0); i < n; i++ {
		err := tbl.Insert([]engine.Value{
			engine.IntValue(i),
			engine.FloatValue(float64(i)),
			engine.FloatValue(float64(i % 97)),
			engine.BinaryValue(pad),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestKeyPushdownTouchesFewPages is the acceptance check: point lookups,
// key ranges and TOP n must not read the whole clustered index. Pages
// touched are counted through the buffer pool's LogicalReads.
func TestKeyPushdownTouchesFewPages(t *testing.T) {
	const rows = 5000
	db := wideDB(t, rows)
	tbl, err := db.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tbl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LeafPages < 20 {
		t.Fatalf("table too small for the test: %d leaf pages", stats.LeafPages)
	}
	pool := db.Pool()

	measure := func(q string, wantRows int) uint64 {
		t.Helper()
		pool.ResetStats()
		res, err := Run(db, q)
		if err != nil {
			t.Fatalf("Run(%q): %v", q, err)
		}
		if len(res.Rows) != wantRows {
			t.Fatalf("Run(%q) = %d rows, want %d", q, len(res.Rows), wantRows)
		}
		return pool.Stats().LogicalReads
	}

	full := measure("SELECT COUNT(*) FROM T", 1)
	if full < uint64(stats.LeafPages) {
		t.Fatalf("full scan read %d pages, expected >= %d leaves", full, stats.LeafPages)
	}

	// A point lookup descends the tree: height + a couple of pages, not
	// thousands.
	point := measure("SELECT v1 FROM T WHERE id = 4321", 1)
	if point > uint64(stats.TreeHeight)+2 {
		t.Errorf("point lookup read %d pages (height %d, %d leaves) — not pushed down",
			point, stats.TreeHeight, stats.LeafPages)
	}

	// TOP n stops after the first leaf or two.
	top := measure("SELECT TOP 3 id FROM T", 3)
	if top > uint64(stats.TreeHeight)+2 {
		t.Errorf("TOP 3 read %d pages — did not terminate early", top)
	}

	// A narrow range touches the descent plus the pages the range spans.
	rng := measure("SELECT COUNT(*) FROM T WHERE id >= 1000 AND id < 1100", 1)
	if rng > uint64(stats.TreeHeight)+5 {
		t.Errorf("range scan read %d pages — not pushed down", rng)
	}
	if rng >= full/4 {
		t.Errorf("range scan read %d pages vs %d for full scan", rng, full)
	}

	if got := pool.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames = %d", got)
	}
}

func TestStreamingEarlyCloseReleasesPins(t *testing.T) {
	db := wideDB(t, 3000)
	rows, err := Query(db, "SELECT id, v1 FROM T")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatal("short stream")
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Error("Next after Close must return false")
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after abandoned stream = %d, want 0", got)
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers after abandoned stream: %v", err)
	}

	// TOP n satisfied: pins are released even before Close is called.
	rows, err = Query(db, "SELECT TOP 2 id FROM T")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after TOP-n drain (no Close yet) = %d, want 0", got)
	}
	if err := rows.Close(); err != nil {
		t.Errorf("Close after TOP-n drain: %v", err)
	}
}

// TestParallelAggregateMatchesSerial forces the parallel aggregate scan
// and checks it against the serial pipeline and the reference executor.
// v1 holds integer-valued floats, so SUM is exact under any association.
func TestParallelAggregateMatchesSerial(t *testing.T) {
	db := wideDB(t, 5000)
	db.Funcs().Register("dbo.Twice", 1, func(args []engine.Value) (engine.Value, error) {
		f, err := args[0].AsFloat()
		if err != nil {
			return engine.Null, err
		}
		return engine.FloatValue(2 * f), nil
	})
	queries := []string{
		"SELECT COUNT(*) FROM T",
		"SELECT SUM(v1) FROM T",
		"SELECT AVG(v1) FROM T",
		"SELECT MIN(v1), MAX(v1) FROM T",
		"SELECT COUNT(*), SUM(v1), MIN(v2), MAX(v2) FROM T",
		"SELECT SUM(v1) FROM T WHERE v2 >= 50",
		"SELECT SUM(v1) FROM T WHERE id >= 1000 AND id < 4000",
		"SELECT SUM(v1) FROM T WHERE id >= 1000 AND id < 4000 AND id % 2 = 0",
		"SELECT SUM(dbo.Twice(v1)) FROM T",
		"SELECT SUM(v1) FROM T WHERE id = 17",
		"SELECT SUM(v1) FROM T WHERE id = 5 AND id = 7", // empty range
	}
	serial := ExecOptions{Parallelism: 1}
	parallel := ExecOptions{Parallelism: 4, ParallelThreshold: 1}
	rowParallel := ExecOptions{Parallelism: 4, ParallelThreshold: 1, RowPipeline: true}
	for _, q := range queries {
		want, err := RunWith(db, q, serial)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		got, err := RunWith(db, q, parallel)
		if err != nil {
			t.Fatalf("parallel %q: %v", q, err)
		}
		if diff := resultEq(want, got); diff != "" {
			t.Errorf("parallel %q: %s", q, diff)
		}
		rowGot, err := RunWith(db, q, rowParallel)
		if err != nil {
			t.Fatalf("row parallel %q: %v", q, err)
		}
		if diff := resultEq(want, rowGot); diff != "" {
			t.Errorf("row parallel %q: %s", q, diff)
		}
		ref, err := referenceRun(db, q)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		if diff := resultEq(ref, got); diff != "" {
			t.Errorf("parallel vs reference %q: %s", q, diff)
		}
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after parallel aggregates = %d", got)
	}
}

func TestParallelAggregateWorkerErrorPropagates(t *testing.T) {
	db := wideDB(t, 4000)
	db.Funcs().Register("dbo.FailAt", 1, func(args []engine.Value) (engine.Value, error) {
		i, err := args[0].AsInt()
		if err != nil {
			return engine.Null, err
		}
		if i == 3777 {
			return engine.Null, fmt.Errorf("boom at %d", i)
		}
		return engine.FloatValue(float64(i)), nil
	})
	opts := ExecOptions{Parallelism: 4, ParallelThreshold: 1}
	_, err := RunWith(db, "SELECT SUM(dbo.FailAt(id)) FROM T", opts)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("worker error = %v, want boom", err)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after failed parallel scan = %d", got)
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers after failed parallel scan: %v", err)
	}
}

func TestParallelDecisionRespectsThreshold(t *testing.T) {
	// Tiny table: even with Parallelism set, the threshold keeps it
	// serial (exercised by asserting the result is still right and that
	// UDF calls happen exactly once per row — worker compile would be
	// fine too, but the plan must not misbehave either way).
	db := testDB(t)
	db.Funcs().ResetStats()
	res, err := RunWith(db, "SELECT SUM(dbo.Twice(v1)) FROM Tscalar",
		ExecOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 9900 {
		t.Errorf("SUM(Twice(v1)) = %v", v)
	}
	if calls := db.Funcs().Stats().Calls; calls != 100 {
		t.Errorf("UDF calls = %d, want one per row", calls)
	}
}

func TestExtractKeyBounds(t *testing.T) {
	schema, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		where       string
		lo, hi      string // "" = unbounded
		empty       bool
		residualNil bool
	}{
		{"id = 5", "5", "5", false, true},
		{"id >= 5", "5", "", false, true},
		{"id > 5", "6", "", false, true},
		{"id <= 5", "", "5", false, true},
		{"id < 5", "", "4", false, true},
		{"5 < id", "6", "", false, true},
		{"5 >= id", "", "5", false, true},
		{"id >= 2 AND id <= 8", "2", "8", false, true},
		{"id >= 2 AND x > 0", "2", "", false, false},
		{"id >= 8 AND id <= 2", "8", "2", true, true},
		{"id = 2 AND id = 8", "8", "2", true, true},
		{"id = 2 OR id = 8", "", "", false, false},
		{"NOT id = 2", "", "", false, false},
		{"id > 1.5", "2", "", false, true},
		{"id < 1.5", "", "1", false, true},
		{"id = 1.5", "", "", true, true},
		{"id >= -3", "-3", "", false, true},
		{"x > 3", "", "", false, false},
		{"id + 0 > 3", "", "", false, false}, // not a bare column
		// Past ±2^53 float compares lose integer exactness; pushdown must
		// decline so the predicate behaves the same as its residual form.
		{"id >= 9007199254740993", "", "", false, false},
		{"id = 18000000000000000000", "", "", false, false},
		{"id > -9007199254740995", "", "", false, false},
	}
	for _, c := range cases {
		stmt, err := Parse("SELECT id FROM t WHERE " + c.where)
		if err != nil {
			t.Fatalf("parse %q: %v", c.where, err)
		}
		b, residual := extractKeyBounds(stmt.Where, &schema)
		if c.empty != b.empty {
			t.Errorf("%q: empty = %v, want %v", c.where, b.empty, c.empty)
			continue
		}
		check := func(name, want string, has bool, got int64) {
			t.Helper()
			if want == "" {
				if has {
					t.Errorf("%q: unexpected %s bound %d", c.where, name, got)
				}
				return
			}
			if !has {
				t.Errorf("%q: missing %s bound (want %s)", c.where, name, want)
				return
			}
			if fmt.Sprint(got) != want {
				t.Errorf("%q: %s = %d, want %s", c.where, name, got, want)
			}
		}
		check("lo", c.lo, b.hasLo, b.lo)
		check("hi", c.hi, b.hasHi, b.hi)
		if c.residualNil != (residual == nil) {
			t.Errorf("%q: residual = %v, want nil=%v", c.where, residual, c.residualNil)
		}
	}
}
