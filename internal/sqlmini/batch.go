package sqlmini

import (
	"context"
	"sync/atomic"

	"sqlarray/internal/engine"
)

// This file implements the batch-at-a-time executor. It is the default
// execution mode; the row-at-a-time operators in operators.go remain
// available via ExecOptions.RowPipeline and as the comparison baseline.
//
// Operators exchange a *Batch — a resizable column-major chunk of up to
// ExecOptions.BatchSize rows — through
//
//	nextBatch(b *Batch) (int, error)
//
// The consumer owns the Batch and passes it down the tree; the scan fills
// it directly from B+tree leaf runs, filters compact it in place through
// a selection vector, and the aggregate drains whole batches into its
// accumulators. A batch's contents are valid until the next nextBatch or
// close call on the producer, except for Batch.out rows, which the
// projection carves from a fresh slab per batch and are therefore safe
// to retain indefinitely (that is what Rows hands to callers).
//
// Limits propagate *down* the tree: batchLimitOp clips b.cap before
// delegating, so a TOP 3 under a 1024-row batch still reads only the
// first leaf instead of overfetching a full batch.

// defaultBatchSize is the row capacity of a pipeline batch when
// ExecOptions.BatchSize is zero. ~1024 rows keeps a batch of a few
// float columns well inside L2 while amortizing per-batch overheads.
const defaultBatchSize = 1024

// arenaChunk is the allocation granularity of a batch's binary arena.
const arenaChunk = 64 << 10

// Batch is a column-major chunk of rows flowing between batch operators.
type Batch struct {
	keys []int64          // clustered keys of the live rows, [0:n)
	cols [][]engine.Value // per schema column; nil for columns the plan never reads
	n    int              // live row count
	cap  int              // max rows the producer may fill this round

	// aggVals carries aggregate results once batchAggOp (or the parallel
	// variant) has collapsed the stream into its single output row.
	aggVals []engine.Value

	// out is the projected output, one safe-to-retain row per live row,
	// carved from a fresh slab each batch by batchProjectOp.
	out [][]engine.Value

	// arena backs binary values copied off pinned leaf pages during the
	// scan fill. It is recycled whenever the batch is emptied; values
	// survive a compaction because compaction only moves Value headers.
	arena []byte

	// pins owns the zero-copy blob views MAX-column derefs (cMaxCol)
	// acquire while expressions evaluate over this batch: the resolved
	// payload bytes alias pinned chunk pages, so the pins must live as
	// long as the batch's values do. They are released whenever the
	// batch is recycled for the next fill and when the owning operator
	// closes.
	pins engine.BlobPins
}

// newBatch allocates a batch for a table with ncols schema columns.
// Column slices are allocated lazily by the scan (only needed columns).
func newBatch(ncols int) *Batch {
	return &Batch{cols: make([][]engine.Value, ncols)}
}

// reset empties the batch and sets the fill capacity for the next round.
// Previously returned out rows stay valid (they own their slab); column
// data and arena contents are recycled.
func (b *Batch) reset(capRows int) {
	b.n = 0
	b.cap = capRows
	b.aggVals = nil
	b.arena = b.arena[:0]
	b.pins.Release()
	if cap(b.keys) < capRows {
		b.keys = make([]int64, capRows)
	}
	b.keys = b.keys[:capRows]
}

// recycle empties the batch between fills within one operator call:
// live rows are dropped, the arena is rewound and any zero-copy blob
// pins are released. Capacity and column slices are kept.
func (b *Batch) recycle() {
	b.n = 0
	b.arena = b.arena[:0]
	b.pins.Release()
}

// pinSet exposes the batch's pin set to expression nodes resolving MAX
// column refs zero-copy.
func (b *Batch) pinSet() *engine.BlobPins { return &b.pins }

// ensureCol makes sure column ci can hold cap rows, returning the slice.
func (b *Batch) ensureCol(ci int) []engine.Value {
	if cap(b.cols[ci]) < b.cap {
		b.cols[ci] = make([]engine.Value, b.cap)
	}
	b.cols[ci] = b.cols[ci][:b.cap]
	return b.cols[ci]
}

// copyBytes copies src into the batch arena and returns the stable copy.
// Growing the arena allocates a new chunk; earlier values keep the old
// chunk alive through their own slices, so they remain valid.
func (b *Batch) copyBytes(src []byte) []byte {
	if len(src) == 0 {
		return nil
	}
	if len(b.arena)+len(src) > cap(b.arena) {
		size := arenaChunk
		if len(src) > size {
			size = len(src)
		}
		b.arena = make([]byte, 0, size)
	}
	off := len(b.arena)
	b.arena = b.arena[:off+len(src)]
	dst := b.arena[off : off+len(src) : off+len(src)]
	copy(dst, src)
	return dst
}

// compact keeps only the rows named by the selection vector sel (ascending
// row indices), moving survivors to the front of every live column in
// place, and returns the new row count.
func (b *Batch) compact(sel []int) int {
	for j, i := range sel {
		b.keys[j] = b.keys[i]
	}
	for ci := range b.cols {
		col := b.cols[ci]
		if col == nil {
			continue
		}
		for j, i := range sel {
			col[j] = col[i]
		}
	}
	b.n = len(sel)
	return b.n
}

// batchOperator is the batch-at-a-time executor protocol. nextBatch fills
// b with up to b.cap rows and returns how many were produced; 0 with a
// nil error means end of stream. open and close follow the row operator
// contract (close must be idempotent).
type batchOperator interface {
	open() error
	nextBatch(b *Batch) (int, error)
	close() error
}

// ---- scan ---------------------------------------------------------------

// batchScanOp fills batches straight from the clustered index cursor,
// decoding only the columns the plan references (need) and copying binary
// values off the pinned page into the batch arena.
type batchScanOp struct {
	tbl    *engine.Table
	snap   *engine.Snapshot
	qctx   context.Context
	lo, hi int64
	need   []bool
	cur    *engine.Cursor
}

func (s *batchScanOp) open() error {
	cur, err := s.tbl.CursorRangeAt(s.snap, s.lo, s.hi)
	if err != nil {
		return err
	}
	s.cur = cur
	return nil
}

func (s *batchScanOp) nextBatch(b *Batch) (int, error) {
	if s.cur == nil {
		return 0, nil
	}
	if err := pollCancel(s.qctx); err != nil {
		return 0, err
	}
	return fillFromCursor(s.cur, b, s.need)
}

func (s *batchScanOp) close() error {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	return nil
}

// fillFromCursor appends up to b.cap rows from cur into b, decoding the
// needed columns. Shared by the serial scan and the parallel workers.
func fillFromCursor(cur *engine.Cursor, b *Batch, need []bool) (int, error) {
	for ci, use := range need {
		if use {
			b.ensureCol(ci)
		}
	}
	return cur.FillBatch(b.cap-b.n, func(key int64, row *engine.RowView) error {
		i := b.n
		b.keys[i] = key
		for ci, use := range need {
			if !use {
				continue
			}
			v, err := row.Col(ci)
			if err != nil {
				return err
			}
			if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
				v.B = b.copyBytes(v.B)
			}
			b.cols[ci][i] = v
		}
		b.n++
		return nil
	})
}

// ---- filter -------------------------------------------------------------

// batchFilterOp evaluates the residual predicate over a whole batch and
// compacts the survivors in place through a selection vector. Empty
// batches are refilled internally so consumers never see a zero-row
// batch before end of stream.
type batchFilterOp struct {
	child batchOperator
	qctx  context.Context
	pred  compiled
	sel   []int
}

func (f *batchFilterOp) open() error { return f.child.open() }

func (f *batchFilterOp) nextBatch(b *Batch) (int, error) {
	for {
		if err := pollCancel(f.qctx); err != nil {
			return 0, err
		}
		n, err := f.child.nextBatch(b)
		if n == 0 || err != nil {
			return 0, err
		}
		n, err = filterBatch(f.pred, b, n, &f.sel)
		if err != nil {
			return 0, err
		}
		if n > 0 {
			return n, nil
		}
		// Everything filtered out: recycle the batch and pull more rows.
		b.recycle()
	}
}

func (f *batchFilterOp) close() error { return f.child.close() }

// filterBatch evaluates pred over rows [0, n) of b and compacts the
// survivors to the front in place, returning the surviving row count.
// sel is the caller's reusable selection-vector scratch. Shared by the
// serial filter operator and the parallel aggregate workers so filter
// semantics cannot diverge between the two paths.
func filterBatch(pred compiled, b *Batch, n int, selScratch *[]int) (int, error) {
	vals, err := pred.evalBatch(b, n)
	if err != nil {
		return 0, err
	}
	if cap(*selScratch) < n {
		*selScratch = make([]int, 0, n)
	}
	sel := (*selScratch)[:0]
	for i := 0; i < n; i++ {
		if truthy(vals[i]) {
			sel = append(sel, i)
		}
	}
	*selScratch = sel
	if len(sel) == n {
		return n, nil
	}
	return b.compact(sel), nil
}

// ---- aggregate ----------------------------------------------------------

// batchAggOp drains its child batch-at-a-time into the accumulators and
// then emits a single-row batch carrying the aggregate results.
type batchAggOp struct {
	child batchOperator
	qctx  context.Context
	accs  []*accumulator
	done  bool
}

func (a *batchAggOp) open() error { return a.child.open() }

func (a *batchAggOp) nextBatch(b *Batch) (int, error) {
	if a.done {
		return 0, nil
	}
	a.done = true
	for {
		if err := pollCancel(a.qctx); err != nil {
			return 0, err
		}
		n, err := a.child.nextBatch(b)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			break
		}
		for _, acc := range a.accs {
			if err := acc.addBatch(b, n); err != nil {
				return 0, err
			}
		}
		b.recycle()
	}
	// Release the scan before emitting: the aggregate row references no
	// page memory.
	if err := a.child.close(); err != nil {
		return 0, err
	}
	b.n = 1
	b.aggVals = make([]engine.Value, len(a.accs))
	for i, acc := range a.accs {
		b.aggVals[i] = acc.result()
	}
	return 1, nil
}

func (a *batchAggOp) close() error { return a.child.close() }

// ---- parallel aggregate scan -------------------------------------------

// batchParallelAggOp is the batch counterpart of parallelAggOp: the key
// space is partitioned into contiguous ranges, each worker scans its
// range batch-at-a-time into private accumulators (filling, filtering and
// accumulating whole batches), and the partials merge in partition order.
type batchParallelAggOp struct {
	tbl       *engine.Table
	snap      *engine.Snapshot // shared read view; safe for concurrent workers
	qctx      context.Context
	lo, hi    int64
	workers   int
	batchSize int
	need      []bool
	newWorker func() (workerState, error)
	accs      []*accumulator // merge target (the main plan's accumulators)
	done      bool
}

func (p *batchParallelAggOp) open() error { return nil }

func (p *batchParallelAggOp) nextBatch(b *Batch) (int, error) {
	if p.done {
		return 0, nil
	}
	p.done = true

	if err := runPartitions(p.qctx, p.lo, p.hi, p.workers, p.newWorker, p.scanPartition, p.accs); err != nil {
		return 0, err
	}
	b.n = 1
	b.aggVals = make([]engine.Value, len(p.accs))
	for i, acc := range p.accs {
		b.aggVals[i] = acc.result()
	}
	return 1, nil
}

// scanPartition runs one worker's batch fill-filter-accumulate loop over
// [lo, hi]. stop is a cooperative abort flag set when any worker fails.
func (p *batchParallelAggOp) scanPartition(st *workerState, lo, hi int64, stop *atomic.Bool) error {
	fail := func(err error) error {
		stop.Store(true)
		return err
	}
	cur, err := p.tbl.CursorRangeAt(p.snap, lo, hi)
	if err != nil {
		return fail(err)
	}
	defer cur.Close()
	b := newBatch(len(p.need))
	// The worker's private batch may hold zero-copy blob pins from the
	// last fill; release them however the partition scan exits.
	defer b.pins.Release()
	var sel []int
	for {
		if stop.Load() {
			return nil
		}
		b.reset(p.batchSize)
		n, err := fillFromCursor(cur, b, p.need)
		if err != nil {
			return fail(err)
		}
		if n == 0 {
			return nil
		}
		if st.pred != nil {
			if n, err = filterBatch(st.pred, b, n, &sel); err != nil {
				return fail(err)
			}
			if n == 0 {
				continue
			}
		}
		for _, acc := range st.accs {
			if err := acc.addBatch(b, n); err != nil {
				return fail(err)
			}
		}
	}
}

func (p *batchParallelAggOp) close() error { return nil }

// partitionSpans splits the inclusive key range [lo, hi] into up to
// workers contiguous sub-ranges covering it exactly. The arithmetic is
// wrap-safe across the full int64 span.
func partitionSpans(lo, hi int64, workers int) [][2]int64 {
	w := workers
	span := uint64(hi) - uint64(lo) // key count - 1; wrap-safe
	if span != ^uint64(0) && span+1 < uint64(w) {
		w = int(span + 1)
	}
	if w < 1 {
		w = 1
	}
	// Ceiling division so the remainder spreads across workers instead of
	// all landing on the last one.
	step := span / uint64(w)
	if span%uint64(w) != 0 {
		step++
	}
	if step == 0 {
		step = 1
	}
	spans := make([][2]int64, 0, w)
	for i := 0; i < w; i++ {
		offLo := step * uint64(i)
		if offLo > span {
			break // earlier partitions already cover everything
		}
		offHi := offLo + step - 1
		if offHi < offLo || offHi > span || i == w-1 {
			offHi = span
		}
		spans = append(spans, [2]int64{int64(uint64(lo) + offLo), int64(uint64(lo) + offHi)})
	}
	return spans
}

// ---- project ------------------------------------------------------------

// batchProjectOp evaluates the SELECT items over the batch and carves the
// output rows from a fresh slab, so every row handed upward is safe to
// retain after the batch is recycled. Binary values are copied off the
// batch arena (or the pinned page they still alias) for the same reason.
type batchProjectOp struct {
	child batchOperator
	items []compiled
}

func (p *batchProjectOp) open() error { return p.child.open() }

func (p *batchProjectOp) nextBatch(b *Batch) (int, error) {
	n, err := p.child.nextBatch(b)
	if n == 0 || err != nil {
		return 0, err
	}
	ncols := len(p.items)
	slab := make([]engine.Value, n*ncols)
	if cap(b.out) < n {
		b.out = make([][]engine.Value, n)
	}
	b.out = b.out[:n]
	for ci, it := range p.items {
		vals, err := it.evalBatch(b, n)
		if err != nil {
			return 0, err
		}
		for i := 0; i < n; i++ {
			v := vals[i]
			if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
				v.B = append([]byte(nil), v.B...)
			}
			slab[i*ncols+ci] = v
		}
	}
	for i := 0; i < n; i++ {
		b.out[i] = slab[i*ncols : (i+1)*ncols : (i+1)*ncols]
	}
	return n, nil
}

func (p *batchProjectOp) close() error { return p.child.close() }

// ---- limit --------------------------------------------------------------

// batchLimitOp stops the pipeline after n rows and closes its child the
// moment the limit is reached to release page pins early. When clip is
// set (every operator below preserves row counts, i.e. scan→project
// with no residual filter) it also pushes the remaining budget down by
// clipping b.cap before delegating, so a TOP 3 reads one leaf instead
// of overfetching a full batch. Below a filter the clip would shrink
// the scan's batches to the output budget and erase the vectorization
// win, so the filter scans full batches and the limit truncates the
// surplus here instead.
type batchLimitOp struct {
	child batchOperator
	n     int64
	seen  int64
	clip  bool
}

func (l *batchLimitOp) open() error { return l.child.open() }

func (l *batchLimitOp) nextBatch(b *Batch) (int, error) {
	rem := l.n - l.seen
	if rem <= 0 {
		return 0, nil
	}
	if l.clip && int64(b.cap) > rem {
		b.cap = int(rem)
		b.keys = b.keys[:b.cap]
	}
	n, err := l.child.nextBatch(b)
	if err != nil {
		return 0, err
	}
	if int64(n) > rem {
		n = int(rem)
		b.n = n
		b.out = b.out[:n]
	}
	l.seen += int64(n)
	if l.seen >= l.n {
		if err := l.child.close(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

func (l *batchLimitOp) close() error { return l.child.close() }

// ---- row adapter ---------------------------------------------------------

// batchDrainOp adapts a batch pipeline to the row-at-a-time operator
// interface, so Rows (and every existing caller of the streaming API)
// is oblivious to the execution mode: it drains one batch at a time and
// yields the projected rows individually.
type batchDrainOp struct {
	root      batchOperator
	qctx      context.Context
	batchSize int
	b         *Batch
	i, n      int
	done      bool
	ctx       rowCtx
}

func (d *batchDrainOp) open() error { return d.root.open() }

func (d *batchDrainOp) next() (*rowCtx, error) {
	for d.i >= d.n {
		if d.done {
			return nil, nil
		}
		if err := pollCancel(d.qctx); err != nil {
			return nil, err
		}
		d.b.reset(d.batchSize)
		n, err := d.root.nextBatch(d.b)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			d.done = true
			return nil, nil
		}
		d.i, d.n = 0, n
	}
	d.ctx.out = d.b.out[d.i]
	d.i++
	return &d.ctx, nil
}

func (d *batchDrainOp) close() error {
	// The drain owns the pipeline's batch: release any zero-copy blob
	// pins its current contents hold before (idempotently) closing the
	// operator tree, so a Rows.Close leaves PinnedFrames at zero.
	d.b.pins.Release()
	return d.root.close()
}
