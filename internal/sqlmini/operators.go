package sqlmini

import (
	"context"
	"sync"
	"sync/atomic"

	"sqlarray/internal/engine"
)

// pollCancel is the executor's cancellation check: every operator loop
// that advances a row or batch stream calls it once per iteration (the
// ctxloop analyzer enforces this). A nil ctx — the default ExecOptions —
// costs one branch; a canceled ctx surfaces ctx.Err() through the normal
// error path, so the pipeline's close still releases every pin.
func pollCancel(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// This file implements the Volcano-style executor: a tree of operators,
// each exposing open/next/close, streaming one row at a time from the
// clustered index up through filters, aggregation and projection. Nothing
// below the projection materializes — a row is a view over the pinned
// leaf page until projectOp copies the values the query asked for.
//
// The operator protocol:
//
//   - open acquires resources (cursors); it is called once, top-down.
//   - next returns the next row, or (nil, nil) when the stream is done.
//     The returned rowCtx is owned by the operator and valid only until
//     the following next or close.
//   - close releases resources; it must be idempotent, because limitOp
//     closes its child early to release page pins the moment TOP n is
//     satisfied, and the pipeline is closed again as a whole.
//
// To add an operator (ORDER BY, GROUP BY, ...): implement the interface,
// place it in the tree inside buildPipeline, and nothing else changes.
type operator interface {
	open() error
	next() (*rowCtx, error)
	close() error
}

// ---- scan ---------------------------------------------------------------

// scanOp streams rows from the clustered B+tree in key order, restricted
// to the key range [lo, hi] the planner pushed down. An unrestricted scan
// uses the full int64 range.
type scanOp struct {
	tbl    *engine.Table
	snap   *engine.Snapshot
	qctx   context.Context
	lo, hi int64
	cur    *engine.Cursor
	ctx    rowCtx
}

func (s *scanOp) open() error {
	cur, err := s.tbl.CursorRangeAt(s.snap, s.lo, s.hi)
	if err != nil {
		return err
	}
	s.cur = cur
	return nil
}

func (s *scanOp) next() (*rowCtx, error) {
	if s.cur == nil {
		return nil, nil
	}
	if err := pollCancel(s.qctx); err != nil {
		return nil, err
	}
	if !s.cur.Next() {
		return nil, s.cur.Err()
	}
	s.ctx.key = s.cur.Key()
	s.ctx.row = s.cur.Row()
	return &s.ctx, nil
}

func (s *scanOp) close() error {
	if s.cur != nil {
		s.cur.Close()
	}
	return nil
}

// ---- filter -------------------------------------------------------------

// filterOp passes through rows for which pred is true. The planner hands
// it the residual predicate — key-range conjuncts have already been
// pushed into the scan below.
type filterOp struct {
	child operator
	qctx  context.Context
	pred  compiled
}

func (f *filterOp) open() error { return f.child.open() }

func (f *filterOp) next() (*rowCtx, error) {
	for {
		if err := pollCancel(f.qctx); err != nil {
			return nil, err
		}
		ctx, err := f.child.next()
		if ctx == nil || err != nil {
			return nil, err
		}
		ok, err := f.pred.eval(ctx)
		if err != nil {
			return nil, err
		}
		if truthy(ok) {
			return ctx, nil
		}
	}
}

func (f *filterOp) close() error { return f.child.close() }

// ---- project ------------------------------------------------------------

// projectOp evaluates the SELECT items and materializes the output row.
// Binary values alias the pinned page below; the copy here is what makes
// a yielded row safe to retain after the cursor moves on.
type projectOp struct {
	child operator
	items []compiled
}

func (p *projectOp) open() error { return p.child.open() }

func (p *projectOp) next() (*rowCtx, error) {
	ctx, err := p.child.next()
	if ctx == nil || err != nil {
		return nil, err
	}
	out := make([]engine.Value, len(p.items))
	for i, it := range p.items {
		v, err := it.eval(ctx)
		if err != nil {
			return nil, err
		}
		if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
			v.B = append([]byte(nil), v.B...)
		}
		out[i] = v
	}
	ctx.out = out
	return ctx, nil
}

func (p *projectOp) close() error { return p.child.close() }

// ---- aggregate ----------------------------------------------------------

// aggregateOp drains its child into the accumulators and then emits a
// single row carrying the aggregate results. It is the one pipeline
// breaker in the operator set (as in any engine: aggregation cannot
// stream its input away).
type aggregateOp struct {
	child operator
	qctx  context.Context
	accs  []*accumulator
	done  bool
	ctx   rowCtx
}

func (a *aggregateOp) open() error { return a.child.open() }

func (a *aggregateOp) next() (*rowCtx, error) {
	if a.done {
		return nil, nil
	}
	a.done = true
	for {
		if err := pollCancel(a.qctx); err != nil {
			return nil, err
		}
		ctx, err := a.child.next()
		if err != nil {
			return nil, err
		}
		if ctx == nil {
			break
		}
		for _, acc := range a.accs {
			if err := acc.add(ctx); err != nil {
				return nil, err
			}
		}
	}
	// Release the scan before emitting: the aggregate row references no
	// page memory.
	if err := a.child.close(); err != nil {
		return nil, err
	}
	a.ctx.aggVals = make([]engine.Value, len(a.accs))
	for i, acc := range a.accs {
		a.ctx.aggVals[i] = acc.result()
	}
	return &a.ctx, nil
}

func (a *aggregateOp) close() error { return a.child.close() }

// ---- parallel aggregate scan -------------------------------------------

// workerState is one worker's private compiled state: its residual
// predicate and its accumulator set (index-aligned with the main plan's
// accumulators, because both come from compiling the same AST).
type workerState struct {
	pred compiled
	accs []*accumulator
}

// runPartitions is the fan-out/merge scaffolding shared by the row and
// batch parallel aggregate operators: it partitions [lo, hi] across up
// to workers goroutines, gives each a freshly compiled workerState,
// runs scan over each partition with a cooperative stop flag, returns
// the first error in partition order, and otherwise merges the partial
// accumulators into accs in partition order (keeping float results
// deterministic for a fixed worker count). A non-nil qctx makes the
// fan-out cancelable: a watcher raises the stop flag when the context
// is done, the workers drain out through their per-batch stop checks,
// and ctx.Err() is returned instead of the partial merge.
func runPartitions(qctx context.Context, lo, hi int64, workers int, newWorker func() (workerState, error),
	scan func(st *workerState, lo, hi int64, stop *atomic.Bool) error,
	accs []*accumulator) error {
	if err := pollCancel(qctx); err != nil {
		return err
	}
	spans := partitionSpans(lo, hi, workers)
	states := make([]workerState, len(spans))
	for i := range states {
		st, err := newWorker()
		if err != nil {
			return err
		}
		states[i] = st
	}
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		errs = make([]error, len(spans))
	)
	if qctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-qctx.Done():
				stop.Store(true)
			case <-watchDone:
			}
		}()
	}
	for i, span := range spans {
		wg.Add(1)
		go func(i int, lo, hi int64) {
			defer wg.Done()
			errs[i] = scan(&states[i], lo, hi, &stop)
		}(i, span[0], span[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := pollCancel(qctx); err != nil {
		return err
	}
	for _, st := range states {
		for i, acc := range st.accs {
			accs[i].merge(acc)
		}
	}
	return nil
}

// parallelAggOp fuses scan + filter + aggregate across goroutines: the
// key space [lo, hi] is partitioned into contiguous ranges, each worker
// runs its own cursor, predicate and accumulators over one range, and the
// partial accumulators are merged in partition order. Compiled
// expressions are stateful (UDF argument buffers), so every worker
// compiles its own copies via newWorker.
//
// Floating-point SUM/AVG associate differently than a serial scan when
// partials are merged; results are deterministic for a fixed worker
// count.
//
// Partitioning is by key value, which balances well for the dense
// sequential ids this engine's workloads use but degenerates under
// heavily skewed key distributions (one worker owns the dense region);
// partitioning by leaf pages would fix that and is a planned follow-up.
type parallelAggOp struct {
	tbl       *engine.Table
	snap      *engine.Snapshot // shared read view; safe for concurrent workers
	qctx      context.Context
	lo, hi    int64 // key range to aggregate over (inclusive, lo <= hi)
	workers   int
	newWorker func() (workerState, error)
	accs      []*accumulator // merge target (the main plan's accumulators)
	done      bool
	ctx       rowCtx
}

func (p *parallelAggOp) open() error { return nil }

func (p *parallelAggOp) next() (*rowCtx, error) {
	if p.done {
		return nil, nil
	}
	p.done = true

	if err := runPartitions(p.qctx, p.lo, p.hi, p.workers, p.newWorker, p.scanPartition, p.accs); err != nil {
		return nil, err
	}
	p.ctx.aggVals = make([]engine.Value, len(p.accs))
	for i, acc := range p.accs {
		p.ctx.aggVals[i] = acc.result()
	}
	return &p.ctx, nil
}

// scanPartition runs one worker's scan-filter-accumulate loop over
// [lo, hi]. stop is a cooperative abort flag set when any worker fails.
func (p *parallelAggOp) scanPartition(st *workerState, lo, hi int64, stop *atomic.Bool) error {
	cur, err := p.tbl.CursorRangeAt(p.snap, lo, hi)
	if err != nil {
		stop.Store(true)
		return err
	}
	defer cur.Close()
	var ctx rowCtx
	for cur.Next() {
		if stop.Load() {
			return nil
		}
		ctx.key, ctx.row = cur.Key(), cur.Row()
		if st.pred != nil {
			ok, err := st.pred.eval(&ctx)
			if err != nil {
				stop.Store(true)
				return err
			}
			if !truthy(ok) {
				continue
			}
		}
		for _, acc := range st.accs {
			if err := acc.add(&ctx); err != nil {
				stop.Store(true)
				return err
			}
		}
	}
	if err := cur.Err(); err != nil {
		stop.Store(true)
		return err
	}
	return nil
}

func (p *parallelAggOp) close() error { return nil }

// ---- limit --------------------------------------------------------------

// limitOp stops the pipeline after n rows (TOP n / LIMIT n). On hitting
// the limit it closes its child immediately so the scan's page pins are
// released without waiting for the consumer to finish with the Rows.
type limitOp struct {
	child operator
	n     int64
	seen  int64
}

func (l *limitOp) open() error { return l.child.open() }

func (l *limitOp) next() (*rowCtx, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	ctx, err := l.child.next()
	if ctx == nil || err != nil {
		return nil, err
	}
	l.seen++
	if l.seen >= l.n {
		if err := l.child.close(); err != nil {
			return nil, err
		}
	}
	return ctx, nil
}

func (l *limitOp) close() error { return l.child.close() }
