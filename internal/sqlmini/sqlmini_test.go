package sqlmini

import (
	"errors"
	"math"
	"strings"
	"testing"

	"sqlarray/internal/engine"
)

// testDB builds a small Tscalar-style table plus UDFs.
func testDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewMemDB()
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v1", Type: engine.ColFloat64},
		engine.Column{Name: "v2", Type: engine.ColFloat64},
		engine.Column{Name: "b", Type: engine.ColVarBinary},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("Tscalar", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		err := tbl.Insert([]engine.Value{
			engine.IntValue(i),
			engine.FloatValue(float64(i)),
			engine.FloatValue(float64(i) * 10),
			engine.BinaryValue([]byte{byte(i)}),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	db.Funcs().Register("dbo.EmptyFunction", 2, func(args []engine.Value) (engine.Value, error) {
		return engine.FloatValue(0), nil
	})
	db.Funcs().Register("dbo.Twice", 1, func(args []engine.Value) (engine.Value, error) {
		f, err := args[0].AsFloat()
		if err != nil {
			return engine.Null, err
		}
		return engine.FloatValue(2 * f), nil
	})
	return db
}

func scalarFloat(t *testing.T, db *engine.DB, q string) float64 {
	t.Helper()
	res, err := Run(db, q)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	v, err := res.Scalar()
	if err != nil {
		t.Fatalf("Scalar(%q): %v", q, err)
	}
	f, err := v.AsFloat()
	if err != nil {
		t.Fatalf("AsFloat(%q): %v", q, err)
	}
	return f
}

func TestCountStar(t *testing.T) {
	db := testDB(t)
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar"); got != 100 {
		t.Errorf("COUNT(*) = %g", got)
	}
	// The paper's exact form with the NOLOCK hint.
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)"); got != 100 {
		t.Errorf("COUNT(*) WITH (NOLOCK) = %g", got)
	}
}

func TestSumAvgMinMax(t *testing.T) {
	db := testDB(t)
	if got := scalarFloat(t, db, "SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)"); got != 4950 {
		t.Errorf("SUM = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT AVG(v1) FROM Tscalar"); got != 49.5 {
		t.Errorf("AVG = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT MIN(v2) FROM Tscalar"); got != 0 {
		t.Errorf("MIN = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT MAX(v2) FROM Tscalar"); got != 990 {
		t.Errorf("MAX = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT COUNT(v1) FROM Tscalar"); got != 100 {
		t.Errorf("COUNT(v1) = %g", got)
	}
}

func TestAggregateArithmetic(t *testing.T) {
	db := testDB(t)
	if got := scalarFloat(t, db, "SELECT SUM(v1) / COUNT(*) FROM Tscalar"); got != 49.5 {
		t.Errorf("SUM/COUNT = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT SUM(v1 + v2) FROM Tscalar"); got != 4950*11 {
		t.Errorf("SUM(v1+v2) = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT 2 * SUM(v1) FROM Tscalar"); got != 9900 {
		t.Errorf("2*SUM = %g", got)
	}
}

func TestMultipleAggregates(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT COUNT(*), SUM(v1), MIN(v1), MAX(v1) FROM Tscalar")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("shape = %dx%d", len(res.Rows), len(res.Rows[0]))
	}
	if res.Rows[0][0].I != 100 || res.Rows[0][1].F != 4950 ||
		res.Rows[0][2].F != 0 || res.Rows[0][3].F != 99 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestWhere(t *testing.T) {
	db := testDB(t)
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar WHERE v1 >= 50"); got != 50 {
		t.Errorf("WHERE >= : %g", got)
	}
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar WHERE v1 >= 10 AND v1 < 20"); got != 10 {
		t.Errorf("WHERE AND: %g", got)
	}
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar WHERE v1 = 5 OR v1 = 7"); got != 2 {
		t.Errorf("WHERE OR: %g", got)
	}
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar WHERE NOT v1 < 90"); got != 10 {
		t.Errorf("WHERE NOT: %g", got)
	}
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar WHERE v1 <> 0"); got != 99 {
		t.Errorf("WHERE <>: %g", got)
	}
	if got := scalarFloat(t, db, "SELECT SUM(v1) FROM Tscalar WHERE id % 2 = 0"); got != 2450 {
		t.Errorf("WHERE %%: %g", got)
	}
}

func TestProjectionScan(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT id, v1 * 2 AS doubled FROM Tscalar WHERE id < 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Columns[0] != "id" || res.Columns[1] != "doubled" {
		t.Errorf("columns = %v", res.Columns)
	}
	for i, row := range res.Rows {
		if row[0].I != int64(i) || row[1].F != float64(2*i) {
			t.Errorf("row %d = %v", i, row)
		}
	}
}

func TestTop(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT TOP 7 id FROM Tscalar")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Errorf("TOP 7 returned %d rows", len(res.Rows))
	}
}

func TestUDFInQuery(t *testing.T) {
	db := testDB(t)
	// The paper's Query 5 shape: an empty UDF under SUM.
	if got := scalarFloat(t, db, "SELECT SUM(dbo.EmptyFunction(b, 0)) FROM Tscalar WITH (NOLOCK)"); got != 0 {
		t.Errorf("empty UDF sum = %g", got)
	}
	st := db.Funcs().Stats()
	if st.Calls != 100 {
		t.Errorf("UDF calls = %d, want one per row", st.Calls)
	}
	if got := scalarFloat(t, db, "SELECT SUM(dbo.Twice(v1)) FROM Tscalar"); got != 9900 {
		t.Errorf("twice sum = %g", got)
	}
}

func TestBareAliasAndStringLiteral(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT COUNT(*) n FROM Tscalar")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "n" {
		t.Errorf("alias = %q", res.Columns[0])
	}
	db.Funcs().Register("dbo.strlen", 1, func(args []engine.Value) (engine.Value, error) {
		b, err := args[0].AsBinary()
		if err != nil {
			return engine.Null, err
		}
		return engine.IntValue(int64(len(b))), nil
	})
	res, err = Run(db, "SELECT TOP 1 dbo.strlen('it''s') FROM Tscalar")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 4 {
		t.Errorf("strlen = %v", res.Rows[0][0])
	}
}

func TestNullSemantics(t *testing.T) {
	db := engine.NewMemDB()
	s, _ := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
	)
	tbl, _ := db.CreateTable("t", s)
	for i := int64(0); i < 10; i++ {
		v := engine.FloatValue(float64(i))
		if i%2 == 0 {
			v = engine.Null
		}
		if err := tbl.Insert([]engine.Value{engine.IntValue(i), v}); err != nil {
			t.Fatal(err)
		}
	}
	// COUNT skips NULLs; COUNT(*) does not.
	res, err := Run(db, "SELECT COUNT(*), COUNT(x), SUM(x) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].I != 10 || row[1].I != 5 || row[2].F != 1+3+5+7+9 {
		t.Errorf("row = %v", row)
	}
	// SUM over all-NULL is NULL.
	res, err = Run(db, "SELECT SUM(x) FROM t WHERE id = 0")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("SUM over empty/NULL = %v", res.Rows[0][0])
	}
	// NULL comparisons are not true: only the five non-NULL x (1,3,5,7,9)
	// pass the filter.
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM t WHERE x > 0"); got != 5 {
		t.Errorf("NULL filter count = %g", got)
	}
}

func TestUnaryMinusPrecedence(t *testing.T) {
	db := testDB(t)
	if got := scalarFloat(t, db, "SELECT TOP 1 -v1 + 3 * 2 FROM Tscalar WHERE id = 1"); got != 5 {
		t.Errorf("-1 + 6 = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT TOP 1 (v1 + 3) * 2 FROM Tscalar WHERE id = 1"); got != 8 {
		t.Errorf("(1+3)*2 = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT TOP 1 +v1 FROM Tscalar WHERE id = 9"); got != 9 {
		t.Errorf("unary plus = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT TOP 1 10 - 4 - 3 FROM Tscalar"); got != 3 {
		t.Errorf("left assoc = %g", got)
	}
	if got := scalarFloat(t, db, "SELECT TOP 1 7 / 2 FROM Tscalar"); got != 3.5 {
		t.Errorf("division = %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"",
		"UPDATE Tscalar",
		"SELECT FROM Tscalar",
		"SELECT COUNT(* FROM Tscalar",
		"SELECT v1 FROM",
		"SELECT v1 FROM Tscalar WITH NOLOCK",             // missing parens
		"SELECT v1 FROM Tscalar WHERE",                   // dangling where
		"SELECT v1 Tscalar nonsense extra",               // trailing garbage
		"SELECT dbo. FROM Tscalar",                       // dangling qualifier
		"SELECT dbo.name FROM Tscalar",                   // qualified non-call
		"SELECT TOP x v1 FROM Tscalar",                   // bad TOP
		"SELECT 'unterminated FROM Tscalar",              // bad string
		"SELECT v1 ~ v2 FROM Tscalar",                    // bad char
		"SELECT COUNT(*) FROM Tscalar WHERE SUM(v1) > 0", // agg in WHERE
	}
	for _, q := range bad {
		if _, err := Run(db, q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	if _, err := Run(db, "SELECT COUNT(*) FROM nope"); !errors.Is(err, engine.ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
	if _, err := Run(db, "SELECT nosuchcol FROM Tscalar"); !errors.Is(err, engine.ErrNoColumn) {
		t.Errorf("missing column: %v", err)
	}
	if _, err := Run(db, "SELECT dbo.nosuchfunc(v1) FROM Tscalar"); !errors.Is(err, engine.ErrNoFunc) {
		t.Errorf("missing func: %v", err)
	}
	if _, err := Run(db, "SELECT SUM(b) FROM Tscalar"); err == nil {
		t.Error("summing binary must fail")
	}
	// A bare column beside an aggregate has no defining row (no GROUP BY
	// in the dialect) and must be a plan-time error, not a panic.
	if _, err := Run(db, "SELECT id, COUNT(*) FROM Tscalar"); err == nil {
		t.Error("bare column in aggregate query must fail")
	}
	if _, err := Run(db, "SELECT v1 + SUM(v1) FROM Tscalar"); err == nil {
		t.Error("bare column inside aggregate projection must fail")
	}
	// Columns inside the aggregate argument and in WHERE stay legal.
	if _, err := Run(db, "SELECT SUM(v1 + v2) FROM Tscalar WHERE v1 > 3"); err != nil {
		t.Errorf("columns under aggregate/WHERE: %v", err)
	}
}

func TestExprString(t *testing.T) {
	stmt, err := Parse("SELECT SUM(floatarray.Item_1(v1, 0)) FROM Tscalar")
	if err != nil {
		t.Fatal(err)
	}
	s := ExprString(stmt.Items[0].Expr)
	if !strings.Contains(s, "SUM(") || !strings.Contains(s, "floatarray.item_1") {
		t.Errorf("ExprString = %q", s)
	}
}

func TestScalarHelperErrors(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT id, v1 FROM Tscalar WHERE id < 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Scalar(); err == nil {
		t.Error("multi-row Scalar must fail")
	}
}

func TestComparisonNaNSafety(t *testing.T) {
	db := engine.NewMemDB()
	s, _ := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
	)
	tbl, _ := db.CreateTable("t", s)
	if err := tbl.Insert([]engine.Value{engine.IntValue(1), engine.FloatValue(math.NaN())}); err != nil {
		t.Fatal(err)
	}
	// NaN compares false everywhere; no panic.
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM t WHERE x > 0 OR x <= 0"); got != 0 {
		t.Errorf("NaN filter = %g", got)
	}
}

func TestLimitAlias(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT id FROM Tscalar LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Errorf("LIMIT 7 returned %d rows", len(res.Rows))
	}
	res, err = Run(db, "SELECT id FROM Tscalar WHERE id >= 40 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].I != 40 {
		t.Errorf("LIMIT with WHERE = %v", res.Rows)
	}
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar WHERE id < 10 LIMIT 1"); got != 10 {
		t.Errorf("aggregate with LIMIT = %g", got)
	}
	bad := []string{
		"SELECT id FROM Tscalar LIMIT 0",
		"SELECT id FROM Tscalar LIMIT x",
		"SELECT id FROM Tscalar LIMIT -3",
		"SELECT TOP 5 id FROM Tscalar LIMIT 5",        // both forms at once
		"SELECT id FROM Tscalar LIMIT 3 WHERE id > 2", // LIMIT must trail
	}
	for _, q := range bad {
		if _, err := Run(db, q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}
