package sqlmini

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlarray/internal/engine"
	"sqlarray/internal/obs"
)

// TestExplainGoldenPlans pins the rendered plan tree for each access
// path the sargable analysis can choose.
func TestExplainGoldenPlans(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		q    string
		want string
	}{
		{
			"EXPLAIN SELECT id, v1 FROM Tscalar WHERE id = 42",
			"Project [id, v1]\n" +
				"   (pipeline=batch)\n" +
				"-> Scan on Tscalar (point lookup key=42)",
		},
		{
			"EXPLAIN SELECT id, v1 FROM Tscalar WHERE id >= 10 AND id <= 20 AND v1 > 1",
			"Project [id, v1]\n" +
				"   (pipeline=batch)\n" +
				"-> Filter (v1 > 1)\n" +
				"   -> Scan on Tscalar (range scan keys [10, 20])",
		},
		{
			"EXPLAIN SELECT TOP 5 id FROM Tscalar",
			"Limit TOP 5\n" +
				"   (pipeline=batch)\n" +
				"-> Project [id]\n" +
				"   -> Scan on Tscalar (full scan)",
		},
		{
			"EXPLAIN SELECT AVG(v1) FROM Tscalar WHERE id < 0 AND id > 10",
			"Project [AVG(v1)]\n" +
				"   (pipeline=batch)\n" +
				"-> Aggregate\n" +
				"   -> Scan on Tscalar (empty range)",
		},
	}
	for _, c := range cases {
		res, err := Execute(db, c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if res.Plan != c.want {
			t.Errorf("%s:\ngot:\n%s\nwant:\n%s", c.q, res.Plan, c.want)
		}
		if res.Result != nil || res.RowsAffected != 0 {
			t.Errorf("%s: EXPLAIN must not execute (result=%v rows=%d)", c.q, res.Result, res.RowsAffected)
		}
	}
}

// TestExplainRowPipeline pins the row-at-a-time tree: same shape, row
// pipeline annotation.
func TestExplainRowPipeline(t *testing.T) {
	db := testDB(t)
	stmt, err := Parse("SELECT id FROM Tscalar WHERE id >= 10 AND v1 > 1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Explain(db, stmt, ExecOptions{RowPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	want := "Project [id]\n" +
		"   (pipeline=row)\n" +
		"-> Filter (v1 > 1)\n" +
		"   -> Scan on Tscalar (range scan keys [10, +inf])"
	if got := plan.Render(); got != want {
		t.Errorf("row pipeline plan:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainScatterGolden pins the Gather tree with partition pruning:
// id <= 250 prunes the fourth member of the 4-way split.
func TestExplainScatterGolden(t *testing.T) {
	parts := scatterParts(t)
	out, stats, err := ScatterExplain(parts,
		&ExplainStmt{Stmt: mustParse(t, "SELECT id, x FROM T WHERE id <= 250")},
		ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := "Gather on T\n" +
		"   (partitions=4 scanned=3 pruned=1)\n" +
		"-> Partition 0 keys [-inf, 99]\n" +
		"   -> Project [id, x]\n" +
		"         (pipeline=batch)\n" +
		"      -> Scan on T (range scan keys [-inf, 250])\n" +
		"-> Partition 1 keys [100, 199]\n" +
		"   -> Project [id, x]\n" +
		"         (pipeline=batch)\n" +
		"      -> Scan on T (range scan keys [-inf, 250])\n" +
		"-> Partition 2 keys [200, 299]\n" +
		"   -> Project [id, x]\n" +
		"         (pipeline=batch)\n" +
		"      -> Scan on T (range scan keys [-inf, 250])"
	if out != want {
		t.Errorf("scatter plan:\ngot:\n%s\nwant:\n%s", out, want)
	}
	if stats.Partitions != 4 || stats.Scanned != 3 {
		t.Errorf("stats = %+v, want 4 partitions 3 scanned", stats)
	}
}

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// bigDB bulk-loads a (id, v) table large enough to span many leaf
// pages and returns the db plus the leaf page count of the load.
func bigDB(t *testing.T, rows int64) (*engine.DB, int) {
	t.Helper()
	db := engine.NewMemDB()
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("big", s)
	if err != nil {
		t.Fatal(err)
	}
	var vals [][]engine.Value
	for i := int64(0); i < rows; i++ {
		vals = append(vals, []engine.Value{engine.IntValue(i), engine.FloatValue(float64(i))})
	}
	stats, err := tbl.BulkLoad(engine.NewValuesSource(vals), engine.BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return db, stats.LeafPages
}

// TestExplainAnalyzePointVsFullScan is the paper's headline asymmetry:
// a clustered point lookup touches a handful of pages (root-to-leaf
// descent) while the full scan touches every leaf.
func TestExplainAnalyzePointVsFullScan(t *testing.T) {
	db, leafPages := bigDB(t, 60000)
	if leafPages < 100 {
		t.Fatalf("load too small to be interesting: %d leaf pages", leafPages)
	}

	pagesOf := func(q string) uint64 {
		t.Helper()
		tr, err := ExplainAnalyze(db, mustParse(t, q), ExecOptions{})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return tr.Delta.Get("pages.logical_reads")
	}

	point := pagesOf("SELECT id, v FROM big WHERE id = 31337")
	full := pagesOf("SELECT COUNT(*) FROM big")
	if point > 8 {
		t.Errorf("point lookup read %d pages, want a handful (<= 8)", point)
	}
	if full < uint64(leafPages) {
		t.Errorf("full scan read %d pages, want >= %d leaf pages", full, leafPages)
	}
	t.Logf("logical reads: point lookup %d vs full scan %d (%d leaf pages)", point, full, leafPages)
}

// TestExplainAnalyzeInvariants checks the structural promises the
// instrumentation makes: every node annotated, metrics inclusive of
// children, the root's page count equal to the query's registry delta,
// and no pinned frames after close.
func TestExplainAnalyzeInvariants(t *testing.T) {
	db, _ := bigDB(t, 20000)
	for _, q := range []string{
		"SELECT id, v FROM big WHERE id >= 1000 AND id <= 5000 AND v > 1500",
		"SELECT TOP 7 id FROM big WHERE id > 100",
		"SELECT COUNT(*), AVG(v) FROM big",
	} {
		tr, err := ExplainAnalyze(db, mustParse(t, q), ExecOptions{})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		root := tr.Plan
		if root == nil {
			t.Fatalf("%s: no plan", q)
		}
		root.Walk(func(n *obs.PlanNode) {
			if !n.Analyzed {
				t.Errorf("%s: node %q not annotated", q, n.Name)
			}
			for _, c := range n.Children {
				if c.Rows < n.Rows && n.Name != "Aggregate" && n.Name != "Project" {
					// Inclusive convention: a parent only ever narrows
					// (Filter, Limit) or reshapes (Aggregate emits one
					// row from many; Project above an Aggregate too).
					t.Errorf("%s: %q emitted %d rows from child %q's %d", q, n.Name, n.Rows, c.Name, c.Rows)
				}
				if n.Pages < c.Pages || n.Chunks < c.Chunks {
					t.Errorf("%s: %q pages/chunks (%d/%d) below child %q (%d/%d); metrics must be inclusive",
						q, n.Name, n.Pages, n.Chunks, c.Name, c.Pages, c.Chunks)
				}
			}
		})
		if delta := tr.Delta.Get("pages.logical_reads"); root.Pages != delta {
			t.Errorf("%s: root pages %d != registry delta %d", q, root.Pages, delta)
		}
		if tr.Duration <= 0 || tr.SQL == "" {
			t.Errorf("%s: trace not finalized: %+v", q, tr)
		}
	}
	if pinned := db.Metrics().Snapshot().Get("pages.pinned_frames"); pinned != 0 {
		t.Errorf("%d frames still pinned after ANALYZE runs", pinned)
	}
}

// TestExplainAnalyzeScatter runs the instrumented fan-out and checks
// the per-partition gather arithmetic.
func TestExplainAnalyzeScatter(t *testing.T) {
	parts := scatterParts(t)
	out, stats, err := ScatterExplain(parts,
		&ExplainStmt{Analyze: true, Stmt: mustParse(t, "SELECT id FROM T WHERE id >= 150")},
		ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 3 {
		t.Fatalf("scanned %d partitions, want 3 (member 0 pruned): %+v", stats.Scanned, stats)
	}
	wantRows := []int64{50, 100, 100}
	if len(stats.PartRows) != len(wantRows) {
		t.Fatalf("PartRows = %v, want %v", stats.PartRows, wantRows)
	}
	var sum int64
	for i, n := range stats.PartRows {
		if n != wantRows[i] {
			t.Errorf("partition %d gathered %d rows, want %d", i, n, wantRows[i])
		}
		sum += n
	}
	if stats.RowsGathered != sum || sum != 250 {
		t.Errorf("RowsGathered = %d (sum %d), want 250", stats.RowsGathered, sum)
	}
	if !strings.Contains(out, "Gather on T") || !strings.Contains(out, "actual rows=250") {
		t.Errorf("gather root not annotated with total rows:\n%s", out)
	}
	if strings.Count(out, "-> Partition") != 3 {
		t.Errorf("want 3 partition subtrees:\n%s", out)
	}
}

// TestSlowQueryLog drives a query over the threshold and checks the
// structured entry: one JSON line carrying the SQL, the timing, and the
// annotated plan.
func TestSlowQueryLog(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	log := obs.NewSlowLog(&buf)
	res, err := ExecuteWith(db, "SELECT id, v1 FROM Tscalar WHERE v1 > 10", ExecOptions{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != 89 {
		t.Fatalf("query returned %d rows, want 89", len(res.Result.Rows))
	}
	line := buf.String()
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one JSON line, got %q", line)
	}
	var e obs.SlowLogEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("slow-log line is not JSON: %v\n%s", err, line)
	}
	// The trace SQL is reconstructed from the AST (ExprString
	// parenthesizes), not the original text.
	if e.SQL != "SELECT id, v1 FROM Tscalar WHERE (v1 > 10)" {
		t.Errorf("logged sql = %q", e.SQL)
	}
	if e.Plan == nil || !e.Plan.Analyzed || e.Plan.Rows != 89 {
		t.Errorf("logged plan missing or unannotated: %+v", e.Plan)
	}
	if e.DurationMS <= 0 || e.Pages == 0 {
		t.Errorf("entry not filled: %+v", e)
	}

	// Under the threshold: nothing is emitted.
	buf.Reset()
	_, err = ExecuteWith(db, "SELECT id FROM Tscalar WHERE id = 1", ExecOptions{
		SlowQueryThreshold: time.Minute,
		SlowQueryLog:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("fast query logged: %s", buf.String())
	}
}

// TestScatterStatsRace hammers concurrent scatter queries — plain
// selects, aggregates, and instrumented ANALYZE fan-outs — each reading
// its own ScatterStats, under the race detector. Stats are assembled
// merge-after-join; this test is the regression net for that property.
func TestScatterStatsRace(t *testing.T) {
	parts := scatterParts(t)
	queries := []string{
		"SELECT id FROM T WHERE id >= 150",
		"SELECT COUNT(*) FROM T",
		"SELECT SUM(x) FROM T WHERE id <= 250",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				q := queries[(g+i)%len(queries)]
				_, stats, err := ScatterRun(parts, q, ExecOptions{Parallelism: 4})
				if err != nil {
					errs <- fmt.Errorf("%s: %w", q, err)
					return
				}
				// Read every stats field; the race detector flags any
				// write that escaped the join barrier.
				total := int64(stats.Partitions + stats.Scanned)
				for _, n := range stats.PartRows {
					total += n
				}
				_ = total + stats.RowsGathered
				if g%3 == 0 {
					_, st, err := ScatterExplain(parts,
						&ExplainStmt{Analyze: true, Stmt: mustParse(t, q)},
						ExecOptions{Parallelism: 2})
					if err != nil {
						errs <- err
						return
					}
					_ = st.RowsGathered
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
