package sqlmini

import (
	"fmt"
	"sync"
	"testing"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// TestConcurrentDMLAndParallelScans runs writers (INSERT / UPDATE /
// subarray UPDATE / DELETE through the SQL layer, WAL-logged) against
// readers driving parallel aggregate scans and zero-copy MAX-column
// projections on the sharded buffer pool. Run under -race this is the
// satellite's writers-vs-readers soundness check; afterward no pin may
// dangle and the catalog row count must match a full scan.
func TestConcurrentDMLAndParallelScans(t *testing.T) {
	disk := pages.NewMemDisk()
	l, err := wal.Open(wal.NewMemStorage(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(engine.Options{Disk: disk, PoolPages: 1024, WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	registerArrayFuncs(db)
	mkTable := func(name string, rows int) *engine.Table {
		s, err := engine.NewSchema(
			engine.Column{Name: "id", Type: engine.ColInt64},
			engine.Column{Name: "x", Type: engine.ColFloat64},
			engine.Column{Name: "m", Type: engine.ColVarBinaryMax},
		)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable(name, s)
		if err != nil {
			t.Fatal(err)
		}
		arr := make([]float64, 64)
		for i := 0; i < rows; i++ {
			for j := range arr {
				arr[j] = float64(i + j)
			}
			a, err := core.FromFloat64s(core.Max, core.Float64, arr, len(arr))
			if err != nil {
				t.Fatal(err)
			}
			if err := tbl.Insert([]engine.Value{
				engine.IntValue(int64(i)), engine.FloatValue(float64(i)), engine.BinaryMaxValue(a.Bytes()),
			}); err != nil {
				t.Fatal(err)
			}
		}
		return tbl
	}
	hot := mkTable("hot", 2000) // DML target
	mkTable("warm", 2000)       // read-only neighbour
	opts := ExecOptions{Parallelism: 4, ParallelThreshold: 64}

	const iters = 60
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Readers: parallel aggregates on both tables plus a zero-copy MAX
	// projection (pins batch-owned chunk pages).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tables := []string{"hot", "warm"}
			for i := 0; i < iters; i++ {
				tn := tables[(r+i)%2]
				if _, err := RunWith(db, fmt.Sprintf(`SELECT COUNT(*), SUM(x) FROM %s WHERE id >= 100`, tn), opts); err != nil {
					fail(fmt.Errorf("reader agg: %w", err))
					return
				}
				rows, err := QueryWith(db, fmt.Sprintf(`SELECT TOP 40 id, m FROM %s WHERE id >= %d`, tn, i), opts)
				if err != nil {
					fail(fmt.Errorf("reader proj: %w", err))
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					fail(fmt.Errorf("reader proj rows: %w", err))
				}
				if err := rows.Close(); err != nil {
					fail(fmt.Errorf("reader proj close: %w", err))
				}
			}
		}(r)
	}

	// Writers: disjoint key bands per writer, full DML mix.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 10000 + w*10000
			for i := 0; i < iters; i++ {
				k := base + i
				if _, err := Execute(db, fmt.Sprintf(
					`INSERT INTO hot VALUES (%d, %d.5, FloatArray.Vector_3(1,2,3))`, k, i)); err != nil {
					fail(fmt.Errorf("writer insert: %w", err))
					return
				}
				if _, err := Execute(db, fmt.Sprintf(
					`UPDATE hot SET x = x + 1 WHERE id = %d`, i%2000)); err != nil {
					fail(fmt.Errorf("writer update: %w", err))
					return
				}
				if _, err := Execute(db, fmt.Sprintf(
					`UPDATE hot SET FloatArrayMax.Subarray(m, IntArray.Vector_1(8), IntArray.Vector_1(2), 1) = FloatArray.Vector_2(-5, -6) WHERE id = %d`, i%2000)); err != nil {
					fail(fmt.Errorf("writer subarray: %w", err))
					return
				}
				if i%4 == 3 {
					if _, err := Execute(db, fmt.Sprintf(`DELETE FROM hot WHERE id = %d`, k-2)); err != nil {
						fail(fmt.Errorf("writer delete: %w", err))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Invariants: no dangling pins, catalog count matches a real scan,
	// every surviving blob resolves.
	if pins := db.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames left pinned after concurrent workload", pins)
	}
	n := int64(0)
	err = hot.Scan(func(key int64, row *engine.RowView) (bool, error) {
		v, err := row.Col(2)
		if err != nil {
			return false, err
		}
		if !v.IsNull() {
			if _, err := hot.FetchBlob(v.B); err != nil {
				return false, err
			}
		}
		n++
		return true, nil
	})
	if err != nil {
		t.Fatalf("post-workload scan: %v", err)
	}
	if n != hot.Rows() {
		t.Fatalf("scanned %d rows, catalog says %d", n, hot.Rows())
	}
	// The subarray writes landed.
	vals, err := hot.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := hot.FetchBlob(vals[2].B)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Wrap(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Item(8); got != -5 {
		t.Fatalf("subarray write lost under concurrency: m[8] = %v", got)
	}
}
