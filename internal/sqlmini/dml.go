package sqlmini

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"sqlarray/internal/btree"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

// This file executes the write half of the dialect: INSERT, UPDATE and
// DELETE, compiled through the same expression compiler and sargable
// key-range analysis the SELECT planner uses. UPDATE and DELETE run in
// two phases — a read phase that scans the (pushed-down) key range and
// materializes the new values, then a write phase inside one engine
// write session — so the scan never chases rows it just moved (the
// classic Halloween problem) and a WHERE on the clustered key descends
// the B+tree instead of scanning the table.
//
// Array-subscript assignment rides the §8 pre-parser: arraysugar turns
//
//	UPDATE t SET arr[2:5] = FloatArray.Vector_3(1,2,3) WHERE id = 7
//
// into a Subarray(...) call in target position, which the executor
// recognizes and lowers to Table.UpdateBlobSubarray — rewriting only
// the chunk pages the slice touches on MAX columns, or patching the
// in-row bytes for short arrays.

// ExecResult is the outcome of Execute: a materialized result set for
// SELECT, a rows-affected count for DML, a rendered plan for EXPLAIN.
type ExecResult struct {
	Result       *Result // nil for DML and EXPLAIN statements
	RowsAffected int64
	Plan         string // rendered plan tree for EXPLAIN [ANALYZE]
}

// Execute parses and runs any supported statement.
func Execute(db *engine.DB, sql string) (*ExecResult, error) {
	return ExecuteWith(db, sql, ExecOptions{})
}

// ExecuteWith is Execute with explicit execution options. Pipeline
// tuning applies to the SELECT path only; ExecOptions.Ctx also cancels
// the read phase of UPDATE and DELETE.
func ExecuteWith(db *engine.DB, sql string, opts ExecOptions) (*ExecResult, error) {
	stmt, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	return ExecuteStmt(db, stmt, opts)
}

// ExecuteStmt runs a parsed statement.
func ExecuteStmt(db *engine.DB, stmt Statement, opts ExecOptions) (*ExecResult, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		res, err := ExecWith(db, s, opts)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Result: res, RowsAffected: int64(len(res.Rows))}, nil
	case *ExplainStmt:
		return execExplain(db, s, opts)
	case *InsertStmt:
		return execInsert(db, s)
	case *UpdateStmt:
		return execUpdate(db, s, opts.Ctx)
	case *DeleteStmt:
		return execDelete(db, s, opts.Ctx)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

// exprHasColRef reports whether an expression references a column.
func exprHasColRef(e Expr) bool {
	switch n := e.(type) {
	case *ColRef:
		return true
	case *BinaryExpr:
		return exprHasColRef(n.L) || exprHasColRef(n.R)
	case *UnaryExpr:
		return exprHasColRef(n.X)
	case *FuncCall:
		for _, a := range n.Args {
			if exprHasColRef(a) {
				return true
			}
		}
	case *AggCall:
		if n.Arg != nil {
			return exprHasColRef(n.Arg)
		}
	}
	return false
}

// copyValue deep-copies binary payloads so a collected value survives
// the scan that produced it (row views alias pinned pages).
func copyValue(v engine.Value) engine.Value {
	if (v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax) && v.B != nil {
		v.B = append([]byte(nil), v.B...)
	}
	return v
}

// ---- INSERT -------------------------------------------------------------

func execInsert(db *engine.DB, stmt *InsertStmt) (*ExecResult, error) {
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	// Column mapping: positional over the full schema, or the named
	// subset (unmentioned columns become NULL).
	colIdx := make([]int, 0, len(schema.Columns))
	if stmt.Columns == nil {
		for i := range schema.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		seen := make(map[int]bool)
		for _, name := range stmt.Columns {
			i := schema.ColIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, name)
			}
			if seen[i] {
				return nil, fmt.Errorf("sql: column %q listed twice", name)
			}
			seen[i] = true
			colIdx = append(colIdx, i)
		}
	}
	cc := &compileCtx{db: db, tbl: tbl, schema: schema, used: make([]bool, len(schema.Columns))}
	rows := make([][]engine.Value, 0, len(stmt.Rows))
	for _, tuple := range stmt.Rows {
		if len(tuple) != len(colIdx) {
			return nil, fmt.Errorf("sql: %d values for %d columns", len(tuple), len(colIdx))
		}
		vals := make([]engine.Value, len(schema.Columns)) // zero Value = NULL
		for j, e := range tuple {
			if exprHasColRef(e) {
				return nil, fmt.Errorf("sql: column reference in INSERT value")
			}
			if hasAggregate(e) {
				return nil, fmt.Errorf("sql: aggregate in INSERT value")
			}
			c, err := cc.compile(e, false)
			if err != nil {
				return nil, err
			}
			v, err := c.eval(&rowCtx{})
			if err != nil {
				return nil, err
			}
			vals[colIdx[j]] = v
		}
		rows = append(rows, vals)
	}
	tx, err := db.Begin()
	if err != nil {
		return nil, err
	}
	var n int64
	for _, vals := range rows {
		if err := tbl.InsertTx(tx, vals); err != nil {
			return nil, tx.Close(fmt.Errorf("sql: INSERT row %d: %w", n+1, err))
		}
		n++
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: n}, nil
}

// ---- UPDATE -------------------------------------------------------------

// assignKind distinguishes the SET target forms.
type assignKind uint8

const (
	assignColumn   assignKind = iota // SET col = expr
	assignSubarray                   // SET Schema.Subarray(col, offs, sizes[, collapse]) = expr
	assignItem                       // SET Schema.Item_N(col, i0, ..) = expr
)

// compiledAssign is one SET clause ready to evaluate per matching row.
type compiledAssign struct {
	kind  assignKind
	col   int
	value compiled
	offs  compiled   // assignSubarray: IntVector expression
	sizes compiled   // assignSubarray: IntVector expression
	idxs  []compiled // assignItem: index expressions
}

// subUpdate is a materialized in-place subarray write for one row.
type subUpdate struct {
	col     int
	offset  []int
	size    []int
	src     *core.Array
	blobCol bool
}

// rowUpdate is everything the write phase applies to one row.
type rowUpdate struct {
	key  int64
	cols []int
	vals []engine.Value
	subs []subUpdate
}

// compileAssignTarget classifies a SET target expression.
func compileAssignTarget(cc *compileCtx, a Assignment) (*compiledAssign, error) {
	switch tgt := a.Target.(type) {
	case *ColRef:
		idx := cc.schema.ColIndex(tgt.Name)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, tgt.Name)
		}
		return &compiledAssign{kind: assignColumn, col: idx}, nil
	case *FuncCall:
		name := tgt.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		switch {
		case name == "subarray":
			if len(tgt.Args) != 3 && len(tgt.Args) != 4 {
				return nil, fmt.Errorf("sql: subarray SET target wants (col, offsets, sizes[, collapse])")
			}
		case strings.HasPrefix(name, "item_"):
			if len(tgt.Args) < 2 {
				return nil, fmt.Errorf("sql: item SET target wants (col, index...)")
			}
		default:
			return nil, fmt.Errorf("sql: %q is not assignable", ExprString(a.Target))
		}
		colRef, ok := tgt.Args[0].(*ColRef)
		if !ok {
			return nil, fmt.Errorf("sql: subscript assignment target must be a column, got %q", ExprString(tgt.Args[0]))
		}
		idx := cc.schema.ColIndex(colRef.Name)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, colRef.Name)
		}
		ct := cc.schema.Columns[idx].Type
		if ct != engine.ColVarBinary && ct != engine.ColVarBinaryMax {
			return nil, fmt.Errorf("%w: subscript assignment to %s column %q",
				engine.ErrTypeError, ct, colRef.Name)
		}
		ca := &compiledAssign{col: idx}
		if name == "subarray" {
			ca.kind = assignSubarray
			var err error
			if ca.offs, err = cc.compile(tgt.Args[1], false); err != nil {
				return nil, err
			}
			if ca.sizes, err = cc.compile(tgt.Args[2], false); err != nil {
				return nil, err
			}
		} else {
			ca.kind = assignItem
			for _, e := range tgt.Args[1:] {
				c, err := cc.compile(e, false)
				if err != nil {
					return nil, err
				}
				ca.idxs = append(ca.idxs, c)
			}
		}
		return ca, nil
	}
	return nil, fmt.Errorf("sql: %q is not assignable", ExprString(a.Target))
}

// evalIntVector evaluates an expression expected to yield an integer
// index vector (IntArray.Vector_N value).
func evalIntVector(c compiled, ctx *rowCtx) ([]int, error) {
	v, err := c.eval(ctx)
	if err != nil {
		return nil, err
	}
	b, err := v.AsBinary()
	if err != nil {
		return nil, fmt.Errorf("sql: subscript vector: %w", err)
	}
	a, err := core.Wrap(b)
	if err != nil {
		return nil, fmt.Errorf("sql: subscript vector: %w", err)
	}
	return a.Ints(), nil
}

// assignValueArray converts an evaluated RHS into the source array for
// a subarray write: a binary value is wrapped (and must match the
// element type); a numeric scalar becomes a one-element array of the
// stored type.
func assignValueArray(v engine.Value, elem core.ElemType, n int) (*core.Array, error) {
	switch v.Kind {
	case engine.ColVarBinary, engine.ColVarBinaryMax:
		a, err := core.Wrap(append([]byte(nil), v.B...))
		if err != nil {
			return nil, err
		}
		if a.ElemType() != elem {
			return nil, fmt.Errorf("%w: assigning %s elements into a %s array",
				engine.ErrTypeError, a.ElemType(), elem)
		}
		if a.Len() != n {
			return nil, fmt.Errorf("%w: subarray wants %d elements, value has %d",
				engine.ErrTypeError, n, a.Len())
		}
		return a, nil
	case engine.ColInt64, engine.ColFloat64:
		if n != 1 {
			return nil, fmt.Errorf("%w: scalar assigned to a %d-element subarray", engine.ErrTypeError, n)
		}
		a, err := core.New(core.Short, elem, 1)
		if err != nil {
			return nil, err
		}
		switch elem {
		case core.Complex64, core.Complex128:
			f, err := v.AsFloat()
			if err != nil {
				return nil, err
			}
			a.SetComplexAt(0, complex(f, 0))
		case core.Int8, core.Int16, core.Int32, core.Int64:
			i, err := v.AsInt()
			if err != nil {
				return nil, err
			}
			a.SetIntAt(0, i)
		default:
			f, err := v.AsFloat()
			if err != nil {
				return nil, err
			}
			a.SetFloatAt(0, f)
		}
		return a, nil
	}
	return nil, fmt.Errorf("%w: cannot assign %v into an array", engine.ErrTypeError, v.Kind)
}

// elemCount multiplies a size vector.
func elemCount(size []int) int {
	n := 1
	for _, d := range size {
		n *= d
	}
	return n
}

// execUpdate runs the two-phase UPDATE. qctx (may be nil) cancels the
// read phase.
func execUpdate(db *engine.DB, stmt *UpdateStmt, qctx context.Context) (*ExecResult, error) {
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	// The read phase runs on a snapshot: SET expressions and the residual
	// predicate evaluate against pre-statement state (Halloween-safe),
	// and blob derefs inside them resolve the same commit's chunk pages.
	snap := db.Snapshot()
	defer snap.Release()
	cc := &compileCtx{db: db, tbl: tbl, schema: schema, snap: snap, used: make([]bool, len(schema.Columns))}
	assigns := make([]*compiledAssign, 0, len(stmt.Sets))
	for _, a := range stmt.Sets {
		if hasAggregate(a.Value) {
			return nil, fmt.Errorf("sql: aggregate in SET value")
		}
		ca, err := compileAssignTarget(cc, a)
		if err != nil {
			return nil, err
		}
		if ca.value, err = cc.compile(a.Value, false); err != nil {
			return nil, err
		}
		assigns = append(assigns, ca)
	}
	updates, err := collectUpdates(db, tbl, stmt.Where, cc, assigns, qctx)
	if err != nil {
		return nil, err
	}
	// Write phase: one session for the whole statement.
	tx, err := db.Begin()
	if err != nil {
		return nil, err
	}
	var n int64
rows:
	for _, u := range updates {
		// Subarray writes go first: they address the row by its current
		// key, and a plain-column update in the same statement may
		// relocate it (SET id = ...). A NotFound on the first write
		// means the row vanished between the read and write phases —
		// skip it without counting; later writes of the same row cannot
		// miss (the session holds the write lock throughout).
		touched := false
		for _, s := range u.subs {
			if err := tbl.UpdateBlobSubarrayTx(tx, u.key, s.col, s.offset, s.size, s.src); err != nil {
				if errors.Is(err, btree.ErrNotFound) && !touched {
					continue rows
				}
				return nil, tx.Close(err)
			}
			touched = true
		}
		if len(u.cols) > 0 {
			if err := tbl.UpdateTx(tx, u.key, u.cols, u.vals); err != nil {
				if errors.Is(err, btree.ErrNotFound) && !touched {
					continue rows
				}
				return nil, tx.Close(err)
			}
		}
		n++
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: n}, nil
}

// collectUpdates is the read phase: scan the pushed-down key range,
// evaluate the residual predicate and the SET expressions per matching
// row, and materialize everything the write phase needs.
func collectUpdates(db *engine.DB, tbl *engine.Table, where Expr, cc *compileCtx, assigns []*compiledAssign, qctx context.Context) ([]rowUpdate, error) {
	var updates []rowUpdate
	err := scanMatching(db, tbl, where, cc, qctx, func(ctx *rowCtx) error {
		u := rowUpdate{key: ctx.key}
		for _, ca := range assigns {
			switch ca.kind {
			case assignColumn:
				v, err := ca.value.eval(ctx)
				if err != nil {
					return err
				}
				u.cols = append(u.cols, ca.col)
				u.vals = append(u.vals, copyValue(v))
			case assignSubarray, assignItem:
				sub, plain, err := evalSubAssign(tbl, cc.snap, cc.schema, ca, ctx)
				if err != nil {
					return err
				}
				if sub != nil {
					u.subs = append(u.subs, *sub)
				} else {
					u.cols = append(u.cols, ca.col)
					u.vals = append(u.vals, plain)
				}
			}
		}
		updates = append(updates, u)
		return nil
	})
	return updates, err
}

// evalSubAssign evaluates a subscript assignment for the current row.
// MAX columns yield a subUpdate (in-place chunk writes); short inline
// columns yield a patched whole-column value (plain assignment), since
// their bytes live in the row image anyway. snap is the read phase's
// snapshot (header reads resolve the same commit the scan sees).
func evalSubAssign(tbl *engine.Table, snap *engine.Snapshot, schema *engine.Schema, ca *compiledAssign, ctx *rowCtx) (*subUpdate, engine.Value, error) {
	var offset, size []int
	if ca.kind == assignSubarray {
		var err error
		if offset, err = evalIntVector(ca.offs, ctx); err != nil {
			return nil, engine.Null, err
		}
		if size, err = evalIntVector(ca.sizes, ctx); err != nil {
			return nil, engine.Null, err
		}
	} else {
		for _, c := range ca.idxs {
			v, err := c.eval(ctx)
			if err != nil {
				return nil, engine.Null, err
			}
			i, err := v.AsInt()
			if err != nil {
				return nil, engine.Null, err
			}
			offset = append(offset, int(i))
			size = append(size, 1)
		}
	}
	if len(offset) != len(size) {
		return nil, engine.Null, fmt.Errorf("sql: subscript offset rank %d != size rank %d", len(offset), len(size))
	}
	cur, err := columnValue(ctx, ca.col)
	if err != nil {
		return nil, engine.Null, err
	}
	if cur.IsNull() {
		return nil, engine.Null, fmt.Errorf("%w: subscript assignment to NULL column %q",
			engine.ErrNullValue, schema.Columns[ca.col].Name)
	}
	if schema.Columns[ca.col].Type == engine.ColVarBinaryMax {
		// cur.B is the 12-byte ref (target columns are not compiled
		// through cMaxCol, so no payload materialization happened).
		h, _, err := tbl.BlobHeaderAt(snap, cur.B)
		if err != nil {
			return nil, engine.Null, err
		}
		rhs, err := ca.value.eval(ctx)
		if err != nil {
			return nil, engine.Null, err
		}
		src, err := assignValueArray(rhs, h.Elem, elemCount(size))
		if err != nil {
			return nil, engine.Null, err
		}
		return &subUpdate{col: ca.col, offset: offset, size: size, src: src, blobCol: true},
			engine.Null, nil
	}
	// Short inline array: patch a copy of the row bytes.
	arr, err := core.Wrap(append([]byte(nil), cur.B...))
	if err != nil {
		return nil, engine.Null, err
	}
	rhs, err := ca.value.eval(ctx)
	if err != nil {
		return nil, engine.Null, err
	}
	src, err := assignValueArray(rhs, arr.ElemType(), elemCount(size))
	if err != nil {
		return nil, engine.Null, err
	}
	runs, err := core.SubarrayPlan(arr.Header(), offset, size)
	if err != nil {
		return nil, engine.Null, err
	}
	dst, sp := arr.Payload(), src.Payload()
	for _, r := range runs {
		copy(dst[r.SrcOff:r.SrcOff+r.Len], sp[r.DstOff:])
	}
	return nil, engine.BinaryValue(arr.Bytes()), nil
}

// columnValue reads a raw column value for the current row (the stored
// form: a blob ref for MAX columns, not the payload).
func columnValue(ctx *rowCtx, col int) (engine.Value, error) {
	if ctx.row == nil {
		return engine.Null, fmt.Errorf("sql: internal: no row in DML scan context")
	}
	return ctx.row.Col(col)
}

// ---- DELETE -------------------------------------------------------------

func execDelete(db *engine.DB, stmt *DeleteStmt, qctx context.Context) (*ExecResult, error) {
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	// Read phase on a snapshot, like UPDATE: the WHERE evaluates against
	// pre-statement state only.
	snap := db.Snapshot()
	defer snap.Release()
	cc := &compileCtx{db: db, tbl: tbl, schema: schema, snap: snap, used: make([]bool, len(schema.Columns))}
	var keys []int64
	if err := scanMatching(db, tbl, stmt.Where, cc, qctx, func(ctx *rowCtx) error {
		keys = append(keys, ctx.key)
		return nil
	}); err != nil {
		return nil, err
	}
	tx, err := db.Begin()
	if err != nil {
		return nil, err
	}
	var n int64
	for _, k := range keys {
		if err := tbl.DeleteTx(tx, k); err != nil {
			if errors.Is(err, btree.ErrNotFound) {
				continue
			}
			return nil, tx.Close(err)
		}
		n++
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: n}, nil
}

// scanMatching runs the shared read phase: extract sargable key bounds
// from the WHERE tree, compile the residual, and stream the range
// through a cursor on cc.snap (the statement's read snapshot), invoking
// fn for each matching row. qctx (may be nil) is polled per row so a
// canceled statement stops scanning.
func scanMatching(db *engine.DB, tbl *engine.Table, where Expr, cc *compileCtx, qctx context.Context, fn func(ctx *rowCtx) error) error {
	if where != nil && hasAggregate(where) {
		return fmt.Errorf("sql: aggregates are not allowed in WHERE")
	}
	bounds := unboundedKeys()
	residual := where
	if where != nil {
		bounds, residual = extractKeyBounds(where, cc.schema)
	}
	if bounds.empty {
		return nil
	}
	var pred compiled
	if residual != nil {
		var err error
		if pred, err = cc.compile(residual, false); err != nil {
			return err
		}
	}
	cur, err := tbl.CursorRangeAt(cc.snap, bounds.loKey(), bounds.hiKey())
	if err != nil {
		return err
	}
	defer cur.Close()
	ctx := &rowCtx{}
	for cur.Next() {
		if err := pollCancel(qctx); err != nil {
			return err
		}
		ctx.key = cur.Key()
		ctx.row = cur.Row()
		if pred != nil {
			ok, err := pred.eval(ctx)
			if err != nil {
				return err
			}
			if !truthy(ok) {
				continue
			}
		}
		if err := fn(ctx); err != nil {
			return err
		}
	}
	return cur.Err()
}
