package sqlmini

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkScanVsRangeScan shows the key-range pushdown win: both
// queries count the same 100 rows, but the filter variant scans every
// leaf page while the sargable variant descends straight to the range.
func BenchmarkScanVsRangeScan(b *testing.B) {
	db := wideDB(b, 20000)
	run := func(b *testing.B, q string) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Run(db, q)
			if err != nil {
				b.Fatal(err)
			}
			if v, _ := res.Scalar(); v.I != 100 {
				b.Fatalf("count = %v", v)
			}
		}
		b.ReportMetric(float64(db.Pool().Stats().LogicalReads)/float64(b.N), "pages/op")
		db.Pool().ResetStats()
	}
	db.Pool().ResetStats()
	b.Run("FullScanFilter", func(b *testing.B) {
		// v1 mirrors id, so this is the same predicate — minus pushdown.
		run(b, "SELECT COUNT(*) FROM T WHERE v1 >= 10000 AND v1 < 10100")
	})
	b.Run("KeyRangeScan", func(b *testing.B) {
		run(b, "SELECT COUNT(*) FROM T WHERE id >= 10000 AND id < 10100")
	})
}

// BenchmarkPipelineRowVsBatch compares the row-at-a-time Volcano
// pipeline against the batch executor on the shapes the paper's
// workloads are dominated by: full-scan aggregates and filter-heavy
// scans over ≥100k rows. Both sides run serially (Parallelism 1) so the
// difference is purely per-row interface dispatch and materialization
// cost; ns/row is reported for direct comparison.
func BenchmarkPipelineRowVsBatch(b *testing.B) {
	const rows = 100000
	db := wideDB(b, rows)
	cases := []struct {
		name string
		q    string
	}{
		{"AggScan", "SELECT SUM(v1), COUNT(*) FROM T"},
		{"FilterAgg", "SELECT SUM(v1) FROM T WHERE v2 >= 50"},
		{"FilterProject", "SELECT id, v1 + v2 FROM T WHERE v2 < 50"},
	}
	modes := []struct {
		name string
		opts ExecOptions
	}{
		{"Row", ExecOptions{Parallelism: 1, RowPipeline: true}},
		{"Batch", ExecOptions{Parallelism: 1}},
	}
	for _, c := range cases {
		for _, m := range modes {
			b.Run(c.name+"/"+m.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := RunWith(db, c.q, m.opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/rows, "ns/row")
			})
		}
	}
}

// BenchmarkParallelAggregate compares the serial aggregate scan against
// the partitioned parallel one on all available cores.
func BenchmarkParallelAggregate(b *testing.B) {
	db := wideDB(b, 100000)
	const q = "SELECT SUM(v1), MIN(v2), MAX(v2), COUNT(*) FROM T"
	bench := func(opts ExecOptions) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunWith(db, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("Serial", bench(ExecOptions{Parallelism: 1}))
	workers := runtime.GOMAXPROCS(0)
	b.Run(fmt.Sprintf("Parallel-%d", workers),
		bench(ExecOptions{Parallelism: workers, ParallelThreshold: 1}))
}

// BenchmarkMixedScanDML measures reader throughput with zero and one
// concurrent writers — the tentpole's claim made measurable. Scans ride
// snapshots instead of a table latch, so the one-writer variant should
// stay in the same ballpark as the read-only one (the writer costs CPU
// and copy-on-write page copies, never reader blocking); before the
// snapshot work the reader and writer serialized on the table latch.
func BenchmarkMixedScanDML(b *testing.B) {
	const rows = 50000
	const q = "SELECT SUM(v1), COUNT(*) FROM T WHERE v2 >= 10"
	for _, writers := range []int{0, 1} {
		b.Run(fmt.Sprintf("Writers-%d", writers), func(b *testing.B) {
			db := wideDB(b, rows)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var writerErr atomic.Pointer[error]
			var commits atomic.Int64
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						lo := (i * 500) % rows
						if _, err := Execute(db, fmt.Sprintf(
							"UPDATE T SET v1 = v1 + 1 WHERE id >= %d AND id < %d", lo, lo+500)); err != nil {
							writerErr.Store(&err)
							return
						}
						commits.Add(1)
					}
				}(w)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunWith(db, q, ExecOptions{Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows[0][1].I != 44840 { // rows with id%97 >= 10 (v2 mirrors id%97)
					b.Fatalf("count = %v", res.Rows[0][1].I)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			if ep := writerErr.Load(); ep != nil {
				b.Fatalf("writer: %v", *ep)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/rows, "ns/row")
			if writers > 0 {
				b.ReportMetric(float64(commits.Load())/float64(b.N), "commits/op")
			}
		})
	}
}
