package sqlmini

import (
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement: SELECT, INSERT, UPDATE or
// DELETE. ParseStatement returns one; Execute runs it.
type Statement interface {
	stmtNode()
}

func (*SelectStmt) stmtNode()  {}
func (*InsertStmt) stmtNode()  {}
func (*UpdateStmt) stmtNode()  {}
func (*DeleteStmt) stmtNode()  {}
func (*ExplainStmt) stmtNode() {}

// ExplainStmt is EXPLAIN [ANALYZE] <select>. Plain EXPLAIN renders the
// compiled plan tree without running the query; EXPLAIN ANALYZE runs
// it with per-operator instrumentation and renders the annotated tree
// plus an execution summary. Only SELECT targets are supported — DML
// plans are degenerate (one scan) and not worth a renderer yet.
type ExplainStmt struct {
	Analyze bool
	Stmt    *SelectStmt
}

// InsertStmt is INSERT INTO t [(col, ...)] VALUES (expr, ...)[, ...].
// Without a column list the tuples are positional over the full schema.
type InsertStmt struct {
	Table   string
	Columns []string // nil = positional
	Rows    [][]Expr
}

// Assignment is one SET clause item of an UPDATE. Target is either a
// *ColRef (plain column assignment) or — after arraysugar translation
// of `SET arr[lo:hi, ...] = expr` — a *FuncCall naming Subarray or
// Item_N over a column, which the executor turns into an in-place
// subarray update.
type Assignment struct {
	Target Expr
	Value  Expr
}

// UpdateStmt is UPDATE t SET assignment[, ...] [WHERE expr].
type UpdateStmt struct {
	Table string
	Sets  []Assignment
	Where Expr
}

// DeleteStmt is DELETE FROM t [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is the query statement form of the dialect:
//
//	SELECT [TOP n] item [, item ...]
//	FROM table [WITH (NOLOCK)]
//	[WHERE expr]
//	[LIMIT n]
//
// LIMIT n is an accepted alias for TOP n; both set Top.
type SelectStmt struct {
	Items  []SelectItem
	Table  string
	NoLock bool
	Where  Expr
	Top    int64 // 0 = no TOP/LIMIT clause
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// Expr is a parsed expression node.
type Expr interface {
	exprString(sb *strings.Builder)
}

// String renders an expression back to SQL-ish text (diagnostics).
func ExprString(e Expr) string {
	var sb strings.Builder
	e.exprString(&sb)
	return sb.String()
}

// NumberLit is a numeric literal. Integral-looking literals keep IsInt.
type NumberLit struct {
	F     float64
	I     int64
	IsInt bool
}

// StringLit is a string literal (used as the query argument of
// table-driven functions).
type StringLit struct{ S string }

// NullLit is the NULL literal.
type NullLit struct{}

// ColRef references a column of the scanned table.
type ColRef struct{ Name string }

// Star is the * inside COUNT(*).
type Star struct{}

// AggKind enumerates built-in aggregate functions.
type AggKind uint8

const (
	AggCount AggKind = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "AGG?"
}

// AggCall is a built-in aggregate over an argument expression (or * for
// COUNT(*)).
type AggCall struct {
	Kind AggKind
	Arg  Expr // nil for COUNT(*)
}

// FuncCall is a (possibly schema-qualified) scalar UDF call, resolved
// against the engine's function registry at plan time.
type FuncCall struct {
	Name string // lower-cased, "schema.func" or "func"
	Args []Expr
}

// BinaryExpr is an infix arithmetic/comparison/logical operation.
type BinaryExpr struct {
	Op   string // + - * / % = <> < <= > >= AND OR
	L, R Expr
}

// UnaryExpr is unary minus or NOT.
type UnaryExpr struct {
	Op string // "-" or "NOT"
	X  Expr
}

func (n *NumberLit) exprString(sb *strings.Builder) {
	if n.IsInt {
		sb.WriteString(strconv.FormatInt(n.I, 10))
		return
	}
	sb.WriteString(strconv.FormatFloat(n.F, 'g', -1, 64))
}

func (s *StringLit) exprString(sb *strings.Builder) {
	sb.WriteByte('\'')
	sb.WriteString(strings.ReplaceAll(s.S, "'", "''"))
	sb.WriteByte('\'')
}

func (*NullLit) exprString(sb *strings.Builder) { sb.WriteString("NULL") }

func (c *ColRef) exprString(sb *strings.Builder) { sb.WriteString(c.Name) }

func (*Star) exprString(sb *strings.Builder) { sb.WriteByte('*') }

func (a *AggCall) exprString(sb *strings.Builder) {
	sb.WriteString(a.Kind.String())
	sb.WriteByte('(')
	if a.Arg == nil {
		sb.WriteByte('*')
	} else {
		a.Arg.exprString(sb)
	}
	sb.WriteByte(')')
}

func (f *FuncCall) exprString(sb *strings.Builder) {
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		a.exprString(sb)
	}
	sb.WriteByte(')')
}

func (b *BinaryExpr) exprString(sb *strings.Builder) {
	sb.WriteByte('(')
	b.L.exprString(sb)
	sb.WriteByte(' ')
	sb.WriteString(b.Op)
	sb.WriteByte(' ')
	b.R.exprString(sb)
	sb.WriteByte(')')
}

func (u *UnaryExpr) exprString(sb *strings.Builder) {
	sb.WriteString(u.Op)
	if u.Op == "NOT" {
		sb.WriteByte(' ')
	}
	u.X.exprString(sb)
}

// hasAggregate reports whether the expression tree contains an AggCall.
func hasAggregate(e Expr) bool {
	switch n := e.(type) {
	case *AggCall:
		return true
	case *BinaryExpr:
		return hasAggregate(n.L) || hasAggregate(n.R)
	case *UnaryExpr:
		return hasAggregate(n.X)
	case *FuncCall:
		for _, a := range n.Args {
			if hasAggregate(a) {
				return true
			}
		}
	}
	return false
}
