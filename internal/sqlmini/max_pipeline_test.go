package sqlmini

import (
	"fmt"
	"testing"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

// maxDB builds a table with a VARBINARY(MAX) array column mixing
// single-chunk blobs (the zero-copy resolve path), multi-chunk blobs
// (the copying fallback) and a NULL, plus a UDF that consumes the
// materialized array payload.
func maxDB(t testing.TB) *engine.DB {
	// Raw chunk format: the tests here assert exact chunk-page counts
	// that depend on the fixed ChunkSize geometry.
	return maxDBOpts(t, engine.Options{DisableBlobCompression: true})
}

func maxDBOpts(t testing.TB, opts engine.Options) *engine.DB {
	t.Helper()
	db := engine.NewDB(opts)
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "a", Type: engine.ColVarBinaryMax},
		engine.Column{Name: "w", Type: engine.ColFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("cubes", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		var av engine.Value
		switch {
		case i%7 == 3:
			av = engine.Null
		case i%5 == 0:
			// Multi-chunk: 2500 floats = 20 kB, three chunk pages.
			big, err := core.FromFloat64s(core.Max, core.Float64, seq(2500, float64(i)), 2500)
			if err != nil {
				t.Fatal(err)
			}
			av = engine.BinaryMaxValue(big.Bytes())
		default:
			// Single chunk: a short 5-vector stored out of page.
			av = engine.BinaryMaxValue(core.Vector(float64(i), 1, 2, 3, 4).Bytes())
		}
		err := tbl.Insert([]engine.Value{
			engine.IntValue(i), av, engine.FloatValue(float64(i % 11)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	db.Funcs().Register("arr.Sum", 1, func(args []engine.Value) (engine.Value, error) {
		if args[0].IsNull() {
			return engine.Null, nil
		}
		a, err := core.Wrap(args[0].B)
		if err != nil {
			return engine.Null, fmt.Errorf("arr.Sum: %w", err)
		}
		sum := 0.0
		for _, f := range a.Float64s() {
			sum += f
		}
		return engine.FloatValue(sum), nil
	})
	db.Funcs().Register("arr.Len", 1, func(args []engine.Value) (engine.Value, error) {
		if args[0].IsNull() {
			return engine.IntValue(0), nil
		}
		return engine.IntValue(int64(len(args[0].B))), nil
	})
	return db
}

func seq(n int, base float64) []float64 {
	// Tiny increments on a large base: the values stay distinct (the
	// goldens exercise real sums) while consecutive elements share their
	// high mantissa bytes, so the XOR codec path has something to
	// compress when the store is opened with compression on.
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + base + float64(i)/(1<<20)
	}
	return out
}

// maxGoldenQueries exercises MAX-column materialization in every
// expression position: UDF argument, aggregate argument, projection,
// residual filter, under TOP, and mixed with the parallel aggregate
// scan shape.
var maxGoldenQueries = []string{
	"SELECT id, arr.Len(a) FROM cubes",
	"SELECT id, arr.Sum(a) FROM cubes WHERE id < 9",
	"SELECT SUM(arr.Sum(a)) FROM cubes",
	"SELECT COUNT(*) FROM cubes WHERE arr.Len(a) > 100",
	"SELECT a FROM cubes WHERE id = 2",
	"SELECT a FROM cubes WHERE id = 3", // NULL blob
	"SELECT a FROM cubes WHERE id = 5", // multi-chunk blob
	"SELECT TOP 4 id, a FROM cubes",
	"SELECT TOP 3 arr.Sum(a) FROM cubes WHERE w >= 2",
	"SELECT SUM(arr.Len(a) + w) FROM cubes WHERE id >= 10 AND id <= 30",
}

// TestMaxColumnGoldenEquivalence asserts that MAX-column queries return
// identical results across the reference executor and the row, batch
// and tiny-batch pipelines — the batch path resolving refs zero-copy
// off pinned chunk pages, the others copying — and that no strategy
// leaks a pin.
func TestMaxColumnGoldenEquivalence(t *testing.T) {
	db := maxDB(t)
	modes := []struct {
		name string
		opts ExecOptions
	}{
		{"row", ExecOptions{RowPipeline: true}},
		{"batch", ExecOptions{}},
		{"batch3", ExecOptions{BatchSize: 3}},
		{"parallel", ExecOptions{Parallelism: 4, ParallelThreshold: 1}},
	}
	for _, q := range maxGoldenQueries {
		want, err := referenceRun(db, q)
		if err != nil {
			t.Fatalf("reference(%q): %v", q, err)
		}
		for _, m := range modes {
			got, err := RunWith(db, q, m.opts)
			if err != nil {
				t.Fatalf("%s Run(%q): %v", m.name, q, err)
			}
			if diff := resultEq(want, got); diff != "" {
				t.Errorf("%s Run(%q): %s", m.name, q, diff)
			}
			if got := db.Pool().PinnedFrames(); got != 0 {
				t.Fatalf("%s %q: PinnedFrames after Run = %d, want 0", m.name, q, got)
			}
		}
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers after MAX golden suite: %v", err)
	}
}

// TestMaxColumnCompressedGoldenEquivalence runs the MAX golden suite
// against two stores holding identical logical data — one on the raw
// chunk format, one with per-chunk compression (the engine default) —
// and asserts every query returns identical results through every
// pipeline, with no pins leaked by the compressed read paths.
func TestMaxColumnCompressedGoldenEquivalence(t *testing.T) {
	rawDB := maxDB(t)
	compDB := maxDBOpts(t, engine.Options{})
	modes := []struct {
		name string
		opts ExecOptions
	}{
		{"row", ExecOptions{RowPipeline: true}},
		{"batch", ExecOptions{}},
		{"batch3", ExecOptions{BatchSize: 3}},
		{"parallel", ExecOptions{Parallelism: 4, ParallelThreshold: 1}},
	}
	for _, q := range maxGoldenQueries {
		want, err := referenceRun(rawDB, q)
		if err != nil {
			t.Fatalf("raw reference(%q): %v", q, err)
		}
		gotRef, err := referenceRun(compDB, q)
		if err != nil {
			t.Fatalf("compressed reference(%q): %v", q, err)
		}
		if diff := resultEq(want, gotRef); diff != "" {
			t.Errorf("compressed reference(%q): %s", q, diff)
		}
		for _, m := range modes {
			got, err := RunWith(compDB, q, m.opts)
			if err != nil {
				t.Fatalf("compressed %s Run(%q): %v", m.name, q, err)
			}
			if diff := resultEq(want, got); diff != "" {
				t.Errorf("compressed %s Run(%q): %s", m.name, q, diff)
			}
			if got := compDB.Pool().PinnedFrames(); got != 0 {
				t.Fatalf("compressed %s %q: PinnedFrames after Run = %d, want 0", m.name, q, got)
			}
		}
	}
	if st := compDB.Blobs().Stats(); st.CompressedBytesWritten == 0 {
		t.Error("compressed store wrote no compressed chunks; suite compared nothing")
	}
}

// TestMaxColumnEarlyCloseReleasesPins abandons a streaming MAX query
// mid-batch (zero-copy pins live) and checks Close releases everything.
func TestMaxColumnEarlyCloseReleasesPins(t *testing.T) {
	db := maxDB(t)
	rows, err := Query(db, "SELECT id, a FROM cubes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatal("short stream")
		}
	}
	keep := rows.Row()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Fatalf("PinnedFrames after mid-stream Close = %d, want 0", got)
	}
	// The yielded row was materialized by the projection; its payload
	// must stay intact after the pins are gone.
	if len(keep) != 2 || keep[1].Kind != engine.ColVarBinaryMax {
		t.Fatalf("retained row = %v", keep)
	}
	if _, err := core.Wrap(keep[1].B); err != nil {
		t.Fatalf("retained MAX payload corrupt after Close: %v", err)
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers: %v", err)
	}
}

// TestMaxColumnZeroCopyTouchesFewerBytes pins down that the batch
// pipeline's MAX resolve actually goes through the zero-copy path for
// single-chunk blobs: with every array blob on one chunk, the query
// must not copy payload bytes through the blob store's copying reads
// (BytesRead counts copied bytes on ReadAll/ReadAt, and pinned-view
// bytes on the view path — equal totals — so instead assert ChunkReads
// equals the blob count rather than a multiple of it).
func TestMaxColumnZeroCopyTouchesFewerBytes(t *testing.T) {
	db := maxDB(t)
	db.Blobs().ResetStats()
	res, err := Run(db, "SELECT COUNT(*) FROM cubes WHERE arr.Len(a) > 0")
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Scalar()
	if err != nil || v.I == 0 {
		t.Fatalf("scalar = %v, %v", v, err)
	}
	st := db.Blobs().Stats()
	if st.ChunkReads == 0 {
		t.Fatal("expected chunk reads")
	}
	// 40 rows: 6 null (i%7==3), 7 multi-chunk (i%5==0 minus the overlap
	// at i=10, 3 chunks each), 27 single-chunk. One pass must touch
	// 27 + 7*3 = 48 chunks, once each.
	if st.ChunkReads != 48 {
		t.Errorf("ChunkReads = %d, want 48 (each blob chunk touched once)", st.ChunkReads)
	}
}
