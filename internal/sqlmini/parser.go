package sqlmini

import (
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errAt(p.peek().pos, "unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

// ParseStatement parses any supported statement: SELECT, INSERT,
// UPDATE or DELETE.
func ParseStatement(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "SELECT":
		stmt, err = p.selectStmt()
	case t.kind == tokKeyword && t.text == "INSERT":
		stmt, err = p.insertStmt()
	case t.kind == tokKeyword && t.text == "UPDATE":
		stmt, err = p.updateStmt()
	case t.kind == tokKeyword && t.text == "DELETE":
		stmt, err = p.deleteStmt()
	case t.kind == tokKeyword && t.text == "EXPLAIN":
		stmt, err = p.explainStmt()
	default:
		return nil, errAt(t.pos, "expected SELECT, INSERT, UPDATE, DELETE or EXPLAIN, got %q", t.text)
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errAt(p.peek().pos, "unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

// explainStmt parses EXPLAIN [ANALYZE] <select>.
func (p *parser) explainStmt() (*ExplainStmt, error) {
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	stmt := &ExplainStmt{Analyze: p.acceptKeyword("ANALYZE")}
	if t := p.peek(); !(t.kind == tokKeyword && t.text == "SELECT") {
		return nil, errAt(t.pos, "EXPLAIN supports SELECT only, got %q", t.text)
	}
	var err error
	if stmt.Stmt, err = p.selectStmt(); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) tableName() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", errAt(t.pos, "expected table name, got %q", t.text)
	}
	return p.next().text, nil
}

// insertStmt parses INSERT INTO t [(col, ...)] VALUES (tuple)[, ...].
func (p *parser) insertStmt() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{}
	var err error
	if stmt.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if p.acceptPunct("(") {
		for {
			t := p.peek()
			if t.kind != tokIdent {
				return nil, errAt(t.pos, "expected column name, got %q", t.text)
			}
			stmt.Columns = append(stmt.Columns, p.next().text)
			if p.acceptPunct(",") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var tuple []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			tuple = append(tuple, e)
			if p.acceptPunct(",") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			break
		}
		stmt.Rows = append(stmt.Rows, tuple)
		if !p.acceptPunct(",") {
			break
		}
	}
	return stmt, nil
}

// updateStmt parses UPDATE t SET target = expr[, ...] [WHERE expr].
// A SET target is parsed as a primary expression, so both plain columns
// and the arraysugar-translated Subarray/Item_N calls (the subscripted
// l-value forms) come through.
func (p *parser) updateStmt() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{}
	var err error
	if stmt.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		target, err := p.primary()
		if err != nil {
			return nil, err
		}
		if t := p.peek(); t.kind != tokOp || t.text != "=" {
			return nil, errAt(t.pos, "expected = after SET target, got %q", t.text)
		}
		p.next()
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, Assignment{Target: target, Value: val})
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// deleteStmt parses DELETE FROM t [WHERE expr].
func (p *parser) deleteStmt() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{}
	var err error
	if stmt.Table, err = p.tableName(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

type parser struct {
	toks  []token
	i     int
	depth int
}

// maxExprDepth bounds expression nesting so hostile input (kilobytes of
// "(" or "NOT") returns an error instead of exhausting the stack — the
// invariant FuzzParse enforces.
const maxExprDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxExprDepth {
		return errAt(p.peek().pos, "expression nesting exceeds %d levels", maxExprDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token   { return p.toks[p.i] }
func (p *parser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.i }
func (p *parser) restore(s int) { p.i = s }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errAt(p.peek().pos, "expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if t := p.peek(); t.kind == tokPunct && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return errAt(p.peek().pos, "expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.acceptKeyword("TOP") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "TOP wants a number, got %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n <= 0 {
			return nil, errAt(t.pos, "bad TOP count %q", t.text)
		}
		p.next()
		stmt.Top = n
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokIdent {
		return nil, errAt(t.pos, "expected table name, got %q", t.text)
	}
	stmt.Table = p.next().text
	// WITH (NOLOCK) table hint — accepted and recorded, a no-op in our
	// single-writer engine, exactly as in the paper's test queries.
	if p.acceptKeyword("WITH") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("NOLOCK"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		stmt.NoLock = true
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	// LIMIT n is accepted as a trailing alias for TOP n.
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "LIMIT wants a number, got %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n <= 0 {
			return nil, errAt(t.pos, "bad LIMIT count %q", t.text)
		}
		if stmt.Top > 0 {
			return nil, errAt(t.pos, "LIMIT cannot be combined with TOP")
		}
		p.next()
		stmt.Top = n
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent && t.kind != tokString {
			return SelectItem{}, errAt(t.pos, "expected alias, got %q", t.text)
		}
		item.Alias = p.next().text
	} else if t := p.peek(); t.kind == tokIdent {
		// bare alias: SELECT COUNT(*) n FROM t
		item.Alias = p.next().text
	}
	return item, nil
}

// Expression grammar, loosest binding first:
//
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := [NOT] cmpExpr
//	cmpExpr  := addExpr ((= | <> | < | <= | > | >=) addExpr)?
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := unary ((*|/|%) unary)*
//	unary    := [-] primary
//	primary  := number | string | NULL | aggcall | funccall | colref | (expr)
func (p *parser) expr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		isMul := t.kind == tokPunct && t.text == "*"
		isDiv := t.kind == tokOp && (t.text == "/" || t.text == "%")
		if isMul || isDiv {
			p.next()
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			op := t.text
			l = &BinaryExpr{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unary() (Expr, error) {
	if t := p.peek(); t.kind == tokOp && (t.text == "-" || t.text == "+") {
		p.next()
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.primary()
}

var aggKinds = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return &NumberLit{I: i, F: float64(i), IsInt: true}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(t.pos, "bad number %q", t.text)
		}
		return &NumberLit{F: f}, nil
	case tokString:
		p.next()
		return &StringLit{S: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &NullLit{}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			kind := aggKinds[t.text]
			if kind == AggCount && p.acceptPunct("*") {
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &AggCall{Kind: AggCount}, nil
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &AggCall{Kind: kind, Arg: arg}, nil
		}
		return nil, errAt(t.pos, "unexpected keyword %q", t.text)
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, errAt(t.pos, "unexpected %q", t.text)
	case tokIdent:
		// ident | ident.ident | ident(args) | ident.ident(args)
		p.next()
		name := t.text
		qualified := false
		if p.acceptPunct(".") {
			t2 := p.peek()
			if t2.kind != tokIdent && t2.kind != tokKeyword {
				return nil, errAt(t2.pos, "expected name after %q.", name)
			}
			p.next()
			name = name + "." + t2.text
			qualified = true
		}
		if p.acceptPunct("(") {
			call := &FuncCall{Name: strings.ToLower(name)}
			if !p.acceptPunct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptPunct(",") {
						continue
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		if qualified {
			return nil, errAt(t.pos, "qualified name %q must be a function call", name)
		}
		return &ColRef{Name: name}, nil
	}
	return nil, errAt(t.pos, "unexpected end of statement")
}
