package sqlmini

import (
	"fmt"
	"math"
	"sync"
	"time"

	"sqlarray/internal/engine"
	"sqlarray/internal/obs"
)

// Scatter-gather execution over a partitioned table: the table's rows
// live in several member databases, each covering a contiguous
// clustered-key range. One SELECT fans out as per-partition snapshot
// scans on worker goroutines and the partials gather back into a single
// result:
//
//   - aggregate queries merge per-partition partial accumulators — the
//     same merge the parallel aggregate scan uses within one table, so
//     AVG stays exact (sums and counts merge, not averages);
//   - plain selects concatenate rows in partition order, which IS
//     clustered-key order, with TOP pushed into every partition and
//     re-applied to the gathered whole.
//
// Before anything runs, the statement's sargable WHERE bounds prune
// partitions whose key range cannot intersect — the scatter analogue of
// the B+tree descent the single-table scan gets from pushdown.

// Partition couples one member database of a partitioned table with the
// inclusive clustered-key range it covers.
type Partition struct {
	DB     *engine.DB
	Lo, Hi int64
}

// ScatterStats reports how much of the table a scatter execution
// actually touched.
//
// Stats are assembled merge-after-join: each worker goroutine writes
// only its own result slot and the sums are taken after the WaitGroup
// join, so nothing in a ScatterStats is ever written concurrently.
// Concurrent scatter queries each get an independent value and may
// read it freely.
type ScatterStats struct {
	Partitions int // members of the partitioned table
	Scanned    int // partitions that survived key-range pruning

	// PartRows holds the rows gathered from each live (unpruned)
	// partition, in partition order. Filled by plain selects and by
	// EXPLAIN ANALYZE; aggregate queries gather partial accumulators,
	// not rows, and leave it nil.
	PartRows []int64
	// RowsGathered is the sum of PartRows before TOP is re-applied to
	// the gathered whole.
	RowsGathered int64
}

// scatterPlan is the shared front half of scatter execution: schema
// checks, sargable bounds extraction and partition pruning.
type scatterPlan struct {
	tbl0   *engine.Table
	schema *engine.Schema
	bounds keyBounds
	live   []Partition
	stats  ScatterStats
}

// planScatter prunes partitions whose key range cannot intersect the
// statement's sargable WHERE bounds: they are never opened, never
// snapshotted, never scanned.
func planScatter(parts []Partition, stmt *SelectStmt) (scatterPlan, error) {
	sp := scatterPlan{stats: ScatterStats{Partitions: len(parts)}}
	if len(parts) == 0 {
		return sp, fmt.Errorf("sql: scatter over zero partitions")
	}
	tbl0, err := parts[0].DB.Table(stmt.Table)
	if err != nil {
		return sp, err
	}
	sp.tbl0 = tbl0
	sp.schema = tbl0.Schema()
	sp.bounds = unboundedKeys()
	if stmt.Where != nil && !hasAggregate(stmt.Where) {
		sp.bounds, _ = extractKeyBounds(stmt.Where, sp.schema)
	}
	if !sp.bounds.empty {
		for _, p := range parts {
			if p.Hi >= sp.bounds.loKey() && p.Lo <= sp.bounds.hiKey() {
				sp.live = append(sp.live, p)
			}
		}
	}
	sp.stats.Scanned = len(sp.live)
	return sp, nil
}

// ScatterRun parses and executes one SELECT across the partitions of a
// table. Every partition holds the same schema under the same table
// name; parts must be ordered by key range.
func ScatterRun(parts []Partition, query string, opts ExecOptions) (*Result, ScatterStats, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, ScatterStats{}, err
	}
	return ScatterExec(parts, stmt, opts)
}

// ScatterExec is ScatterRun on a parsed statement.
func ScatterExec(parts []Partition, stmt *SelectStmt, opts ExecOptions) (*Result, ScatterStats, error) {
	sp, err := planScatter(parts, stmt)
	if err != nil {
		return nil, sp.stats, err
	}
	aggregate := false
	for _, it := range stmt.Items {
		aggregate = aggregate || hasAggregate(it.Expr)
	}
	if aggregate {
		res, err := scatterAggregate(sp.live, parts[0].DB, sp.tbl0, stmt, sp.schema, opts)
		return res, sp.stats, err
	}
	res, partRows, err := scatterSelect(sp.live, stmt, opts)
	if err != nil {
		return nil, sp.stats, err
	}
	sp.stats.PartRows = partRows
	for _, n := range partRows {
		sp.stats.RowsGathered += n
	}
	return res, sp.stats, nil
}

// ScatterExplain renders the scatter-gather plan for one EXPLAIN
// [ANALYZE] SELECT across the partitions: a Gather root annotated with
// the pruning outcome, one Partition subtree per live member. Plain
// EXPLAIN compiles each member's plan without executing anything;
// ANALYZE runs the statement per member on worker goroutines — every
// trace lands in its own slot and the Gather totals are summed after
// the join (merge-after-join, like the execution paths).
func ScatterExplain(parts []Partition, stmt *ExplainStmt, opts ExecOptions) (string, ScatterStats, error) {
	sp, err := planScatter(parts, stmt.Stmt)
	if err != nil {
		return "", sp.stats, err
	}
	root := &obs.PlanNode{Name: "Gather", Detail: "on " + stmt.Stmt.Table}
	root.AddExtra("partitions", "%d", sp.stats.Partitions)
	root.AddExtra("scanned", "%d", sp.stats.Scanned)
	root.AddExtra("pruned", "%d", sp.stats.Partitions-sp.stats.Scanned)

	children := make([]*obs.PlanNode, len(sp.live))
	if !stmt.Analyze {
		for i, p := range sp.live {
			child, err := Explain(p.DB, stmt.Stmt, opts)
			if err != nil {
				return "", sp.stats, err
			}
			children[i] = partitionPlanNode(i, p, child)
		}
		root.Children = children
		return root.Render(), sp.stats, nil
	}

	traces := make([]*obs.QueryTrace, len(sp.live))
	errs := make([]error, len(sp.live))
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	start := time.Now()
	for i, p := range sp.live {
		wg.Add(1)
		go func(i int, p Partition) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			popts := opts
			popts.Snapshot = nil // every partition reads its own snapshot
			popts.Trace = nil    // per-member trace, not the caller's
			traces[i], errs[i] = ExplainAnalyze(p.DB, stmt.Stmt, popts)
		}(i, p)
	}
	wg.Wait()
	root.Analyzed = true
	root.Time = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return "", sp.stats, err
		}
	}
	sp.stats.PartRows = make([]int64, len(sp.live))
	for i, tr := range traces {
		children[i] = partitionPlanNode(i, sp.live[i], tr.Plan)
		root.Rows += tr.Plan.Rows
		root.Batches += tr.Plan.Batches
		root.Pages += tr.Plan.Pages
		root.Chunks += tr.Plan.Chunks
		sp.stats.PartRows[i] = tr.Plan.Rows
		sp.stats.RowsGathered += tr.Plan.Rows
	}
	root.Children = children
	return root.Render(), sp.stats, nil
}

// partitionPlanNode labels one member's subtree with its key range; the
// annotations mirror the member plan's root (metrics are inclusive).
func partitionPlanNode(i int, p Partition, child *obs.PlanNode) *obs.PlanNode {
	n := &obs.PlanNode{
		Name:     "Partition",
		Detail:   fmt.Sprintf("%d keys [%s, %s]", i, scatterKey(p.Lo), scatterKey(p.Hi)),
		Children: []*obs.PlanNode{child},
	}
	if child.Analyzed {
		n.Analyzed = true
		n.Rows = child.Rows
		n.Batches = child.Batches
		n.Time = child.Time
		n.Pages = child.Pages
		n.Chunks = child.Chunks
	}
	return n
}

func scatterKey(k int64) string {
	switch k {
	case math.MinInt64:
		return "-inf"
	case math.MaxInt64:
		return "+inf"
	}
	return fmt.Sprint(k)
}

// scatterAggregate fans the scan+filter+accumulate stage out per
// partition and merges the partial accumulators in partition order,
// then evaluates the projection once over the merged aggregates.
func scatterAggregate(live []Partition, db0 *engine.DB, tbl0 *engine.Table, stmt *SelectStmt, schema *engine.Schema, opts ExecOptions) (*Result, error) {
	// The master plan owns the merge-target accumulators and the final
	// projection. Its aggregate arguments never run (partition plans
	// feed the data), so a nil snapshot is fine.
	bounds := unboundedKeys()
	residual := stmt.Where
	if stmt.Where != nil {
		bounds, residual = extractKeyBounds(stmt.Where, schema)
	}
	master, err := compileStmt(db0, tbl0, stmt, residual, nil)
	if err != nil {
		return nil, err
	}

	type partial struct {
		accs []*accumulator
		err  error
	}
	partials := make([]partial, len(live))
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for i, p := range live {
		wg.Add(1)
		go func(i int, p Partition) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			accs, err := partitionPartial(p.DB, stmt, residual, bounds, opts)
			partials[i] = partial{accs: accs, err: err}
		}(i, p)
	}
	wg.Wait()
	for _, pt := range partials {
		if pt.err != nil {
			return nil, pt.err
		}
	}
	// Merge in partition order: float results stay deterministic for a
	// fixed partition layout.
	for _, pt := range partials {
		for i, acc := range pt.accs {
			master.accs[i].merge(acc)
		}
	}
	aggVals := make([]engine.Value, len(master.accs))
	for i, acc := range master.accs {
		aggVals[i] = acc.result()
	}
	ctx := &rowCtx{aggVals: aggVals}
	out := make([]engine.Value, len(master.items))
	for i, item := range master.items {
		v, err := item.eval(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return &Result{Columns: master.columns, Rows: [][]engine.Value{out}}, nil
}

// partitionPartial runs scan → filter → accumulate over one partition
// under its own snapshot and returns the partial accumulators.
func partitionPartial(db *engine.DB, stmt *SelectStmt, residual Expr, bounds keyBounds, opts ExecOptions) ([]*accumulator, error) {
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	snap := db.Snapshot()
	defer snap.Release()
	cs, err := compileStmt(db, tbl, stmt, residual, snap)
	if err != nil {
		return nil, err
	}
	var root batchOperator = &batchScanOp{
		tbl: tbl, snap: snap, qctx: opts.Ctx,
		lo: bounds.loKey(), hi: bounds.hiKey(), need: cs.used,
	}
	if cs.where != nil {
		root = &batchFilterOp{child: root, qctx: opts.Ctx, pred: cs.where}
	}
	agg := &batchAggOp{child: root, qctx: opts.Ctx, accs: cs.accs}
	if err := agg.open(); err != nil {
		agg.close()
		return nil, err
	}
	defer agg.close()
	b := newBatch(len(tbl.Schema().Columns))
	b.reset(opts.batchSize())
	if _, err := agg.nextBatch(b); err != nil {
		return nil, err
	}
	b.pins.Release()
	return cs.accs, nil
}

// scatterSelect runs the full statement per partition on worker
// goroutines — TOP included, a prefix per partition is a valid prefix
// of the whole — and concatenates the materialized results in partition
// order (clustered-key order), re-applying TOP to the gathered rows.
// The second return is the per-partition gathered row count, in
// partition order, assembled after the join.
func scatterSelect(live []Partition, stmt *SelectStmt, opts ExecOptions) (*Result, []int64, error) {
	popts := opts
	popts.Snapshot = nil // every partition reads its own snapshot
	popts.Trace = nil    // a shared trace cannot hold N partition plans
	results := make([]*Result, len(live))
	errs := make([]error, len(live))
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for i, p := range live {
		wg.Add(1)
		go func(i int, p Partition) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = ExecWith(p.DB, stmt, popts)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	partRows := make([]int64, len(results))
	out := &Result{}
	for i, r := range results {
		partRows[i] = int64(len(r.Rows))
		if out.Columns == nil {
			out.Columns = r.Columns
		}
		out.Rows = append(out.Rows, r.Rows...)
		if stmt.Top > 0 && int64(len(out.Rows)) >= stmt.Top {
			out.Rows = out.Rows[:int(stmt.Top)]
			break
		}
	}
	if out.Columns == nil {
		// Every partition was pruned: compile nothing, return the empty
		// shape from any member's schema via a zero-partition parse of
		// the projection names.
		out.Columns = columnNames(stmt)
	}
	return out, partRows, nil
}

// columnNames derives result column names without executing (the
// all-pruned case).
func columnNames(stmt *SelectStmt) []string {
	names := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		if it.Alias != "" {
			names[i] = it.Alias
			continue
		}
		name := ExprString(it.Expr)
		if len(name) > 40 {
			name = fmt.Sprintf("col%d", i+1)
		}
		names[i] = name
	}
	return names
}
