package sqlmini

import (
	"fmt"
	"sync"

	"sqlarray/internal/engine"
)

// Scatter-gather execution over a partitioned table: the table's rows
// live in several member databases, each covering a contiguous
// clustered-key range. One SELECT fans out as per-partition snapshot
// scans on worker goroutines and the partials gather back into a single
// result:
//
//   - aggregate queries merge per-partition partial accumulators — the
//     same merge the parallel aggregate scan uses within one table, so
//     AVG stays exact (sums and counts merge, not averages);
//   - plain selects concatenate rows in partition order, which IS
//     clustered-key order, with TOP pushed into every partition and
//     re-applied to the gathered whole.
//
// Before anything runs, the statement's sargable WHERE bounds prune
// partitions whose key range cannot intersect — the scatter analogue of
// the B+tree descent the single-table scan gets from pushdown.

// Partition couples one member database of a partitioned table with the
// inclusive clustered-key range it covers.
type Partition struct {
	DB     *engine.DB
	Lo, Hi int64
}

// ScatterStats reports how much of the table a scatter execution
// actually touched.
type ScatterStats struct {
	Partitions int // members of the partitioned table
	Scanned    int // partitions that survived key-range pruning
}

// ScatterRun parses and executes one SELECT across the partitions of a
// table. Every partition holds the same schema under the same table
// name; parts must be ordered by key range.
func ScatterRun(parts []Partition, query string, opts ExecOptions) (*Result, ScatterStats, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, ScatterStats{}, err
	}
	return ScatterExec(parts, stmt, opts)
}

// ScatterExec is ScatterRun on a parsed statement.
func ScatterExec(parts []Partition, stmt *SelectStmt, opts ExecOptions) (*Result, ScatterStats, error) {
	stats := ScatterStats{Partitions: len(parts)}
	if len(parts) == 0 {
		return nil, stats, fmt.Errorf("sql: scatter over zero partitions")
	}
	tbl0, err := parts[0].DB.Table(stmt.Table)
	if err != nil {
		return nil, stats, err
	}
	schema := tbl0.Schema()

	// Sargable pruning: partitions whose key range cannot intersect the
	// WHERE bounds are never opened, never snapshotted, never scanned.
	bounds := unboundedKeys()
	if stmt.Where != nil && !hasAggregate(stmt.Where) {
		bounds, _ = extractKeyBounds(stmt.Where, schema)
	}
	var live []Partition
	if !bounds.empty {
		for _, p := range parts {
			if p.Hi >= bounds.loKey() && p.Lo <= bounds.hiKey() {
				live = append(live, p)
			}
		}
	}
	stats.Scanned = len(live)

	aggregate := false
	for _, it := range stmt.Items {
		aggregate = aggregate || hasAggregate(it.Expr)
	}
	if aggregate {
		res, err := scatterAggregate(live, parts[0].DB, tbl0, stmt, schema, opts)
		return res, stats, err
	}
	res, err := scatterSelect(live, stmt, opts)
	return res, stats, err
}

// scatterAggregate fans the scan+filter+accumulate stage out per
// partition and merges the partial accumulators in partition order,
// then evaluates the projection once over the merged aggregates.
func scatterAggregate(live []Partition, db0 *engine.DB, tbl0 *engine.Table, stmt *SelectStmt, schema *engine.Schema, opts ExecOptions) (*Result, error) {
	// The master plan owns the merge-target accumulators and the final
	// projection. Its aggregate arguments never run (partition plans
	// feed the data), so a nil snapshot is fine.
	bounds := unboundedKeys()
	residual := stmt.Where
	if stmt.Where != nil {
		bounds, residual = extractKeyBounds(stmt.Where, schema)
	}
	master, err := compileStmt(db0, tbl0, stmt, residual, nil)
	if err != nil {
		return nil, err
	}

	type partial struct {
		accs []*accumulator
		err  error
	}
	partials := make([]partial, len(live))
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for i, p := range live {
		wg.Add(1)
		go func(i int, p Partition) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			accs, err := partitionPartial(p.DB, stmt, residual, bounds, opts)
			partials[i] = partial{accs: accs, err: err}
		}(i, p)
	}
	wg.Wait()
	for _, pt := range partials {
		if pt.err != nil {
			return nil, pt.err
		}
	}
	// Merge in partition order: float results stay deterministic for a
	// fixed partition layout.
	for _, pt := range partials {
		for i, acc := range pt.accs {
			master.accs[i].merge(acc)
		}
	}
	aggVals := make([]engine.Value, len(master.accs))
	for i, acc := range master.accs {
		aggVals[i] = acc.result()
	}
	ctx := &rowCtx{aggVals: aggVals}
	out := make([]engine.Value, len(master.items))
	for i, item := range master.items {
		v, err := item.eval(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return &Result{Columns: master.columns, Rows: [][]engine.Value{out}}, nil
}

// partitionPartial runs scan → filter → accumulate over one partition
// under its own snapshot and returns the partial accumulators.
func partitionPartial(db *engine.DB, stmt *SelectStmt, residual Expr, bounds keyBounds, opts ExecOptions) ([]*accumulator, error) {
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	snap := db.Snapshot()
	defer snap.Release()
	cs, err := compileStmt(db, tbl, stmt, residual, snap)
	if err != nil {
		return nil, err
	}
	var root batchOperator = &batchScanOp{
		tbl: tbl, snap: snap, qctx: opts.Ctx,
		lo: bounds.loKey(), hi: bounds.hiKey(), need: cs.used,
	}
	if cs.where != nil {
		root = &batchFilterOp{child: root, qctx: opts.Ctx, pred: cs.where}
	}
	agg := &batchAggOp{child: root, qctx: opts.Ctx, accs: cs.accs}
	if err := agg.open(); err != nil {
		agg.close()
		return nil, err
	}
	defer agg.close()
	b := newBatch(len(tbl.Schema().Columns))
	b.reset(opts.batchSize())
	if _, err := agg.nextBatch(b); err != nil {
		return nil, err
	}
	b.pins.Release()
	return cs.accs, nil
}

// scatterSelect runs the full statement per partition on worker
// goroutines — TOP included, a prefix per partition is a valid prefix
// of the whole — and concatenates the materialized results in partition
// order (clustered-key order), re-applying TOP to the gathered rows.
func scatterSelect(live []Partition, stmt *SelectStmt, opts ExecOptions) (*Result, error) {
	popts := opts
	popts.Snapshot = nil // every partition reads its own snapshot
	results := make([]*Result, len(live))
	errs := make([]error, len(live))
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for i, p := range live {
		wg.Add(1)
		go func(i int, p Partition) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = ExecWith(p.DB, stmt, popts)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &Result{}
	for _, r := range results {
		if out.Columns == nil {
			out.Columns = r.Columns
		}
		out.Rows = append(out.Rows, r.Rows...)
		if stmt.Top > 0 && int64(len(out.Rows)) >= stmt.Top {
			out.Rows = out.Rows[:int(stmt.Top)]
			break
		}
	}
	if out.Columns == nil {
		// Every partition was pruned: compile nothing, return the empty
		// shape from any member's schema via a zero-partition parse of
		// the projection names.
		out.Columns = columnNames(stmt)
	}
	return out, nil
}

// columnNames derives result column names without executing (the
// all-pruned case).
func columnNames(stmt *SelectStmt) []string {
	names := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		if it.Alias != "" {
			names[i] = it.Alias
			continue
		}
		name := ExprString(it.Expr)
		if len(name) > 40 {
			name = fmt.Sprintf("col%d", i+1)
		}
		names[i] = name
	}
	return names
}
