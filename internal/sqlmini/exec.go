package sqlmini

import (
	"bytes"
	"fmt"
	"math"

	"sqlarray/internal/engine"
)

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    [][]engine.Value
}

// Scalar returns the single value of a one-row one-column result.
func (r *Result) Scalar() (engine.Value, error) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return engine.Null, fmt.Errorf("sql: result is %dx%d, not scalar", len(r.Rows), len(r.Columns))
	}
	return r.Rows[0][0], nil
}

// Run parses, plans and executes a SELECT against db, materializing the
// full result. It is a thin wrapper over the streaming pipeline; use
// Query to consume rows incrementally.
func Run(db *engine.DB, query string) (*Result, error) {
	return RunWith(db, query, ExecOptions{})
}

// RunWith is Run with explicit execution options.
func RunWith(db *engine.DB, query string, opts ExecOptions) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecWith(db, stmt, opts)
}

// Exec plans and executes a parsed statement, materializing the result.
func Exec(db *engine.DB, stmt *SelectStmt) (*Result, error) {
	return ExecWith(db, stmt, ExecOptions{})
}

// ExecWith is Exec with explicit execution options.
func ExecWith(db *engine.DB, stmt *SelectStmt, opts ExecOptions) (*Result, error) {
	rows, err := StreamWith(db, stmt, opts)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Query parses and executes a SELECT, returning a streaming row cursor.
// The caller must Close it (early termination releases pinned pages).
func Query(db *engine.DB, query string) (*Rows, error) {
	return QueryWith(db, query, ExecOptions{})
}

// QueryWith is Query with explicit execution options.
func QueryWith(db *engine.DB, query string, opts ExecOptions) (*Rows, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return StreamWith(db, stmt, opts)
}

// StreamWith plans a parsed statement and opens the operator pipeline,
// returning a streaming row cursor over it.
func StreamWith(db *engine.DB, stmt *SelectStmt, opts ExecOptions) (*Rows, error) {
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	pl, err := buildPipeline(db, tbl, stmt, opts)
	if err != nil {
		return nil, err
	}
	if err := pl.root.open(); err != nil {
		pl.root.close()
		return nil, err
	}
	return &Rows{columns: pl.columns, root: pl.root}, nil
}

// Rows streams query results one row at a time:
//
//	rows, err := sqlmini.Query(db, "SELECT TOP 5 id, v1 FROM t")
//	defer rows.Close()
//	for rows.Next() {
//	    row := rows.Row()
//	}
//	err = rows.Err()
//
// Rows are materialized as they are yielded: a slice returned by Row
// remains valid after further Next calls and after Close.
type Rows struct {
	columns []string
	root    operator
	cur     []engine.Value
	err     error
	closed  bool
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.columns }

// Next advances to the next row, returning false at the end of the
// result set or on error (check Err).
func (r *Rows) Next() bool {
	if r.err != nil || r.closed {
		return false
	}
	ctx, err := r.root.next()
	if err != nil {
		r.err = err
		return false
	}
	if ctx == nil {
		return false
	}
	r.cur = ctx.out
	return true
}

// Row returns the current row. The slice is freshly materialized per row
// and safe to retain.
func (r *Rows) Row() []engine.Value { return r.cur }

// Err returns the first error encountered while streaming.
func (r *Rows) Err() error { return r.err }

// Close tears down the pipeline, releasing any pinned pages. Safe to
// call more than once.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	return r.root.close()
}

// ---- plan-time compilation -------------------------------------------

// rowCtx carries per-row state through the operator pipeline: the
// current key and row view below the projection, aggregate results above
// the aggregate operator, and the materialized output row once
// projected.
type rowCtx struct {
	key     int64
	row     *engine.RowView
	aggVals []engine.Value // filled by the aggregate operators
	out     []engine.Value // filled by projectOp; safe to retain
}

// compiled is an executable expression.
type compiled interface {
	eval(ctx *rowCtx) (engine.Value, error)
}

type cConst struct{ v engine.Value }

func (c *cConst) eval(*rowCtx) (engine.Value, error) { return c.v, nil }

type cCol struct{ idx int }

func (c *cCol) eval(ctx *rowCtx) (engine.Value, error) { return ctx.row.Col(c.idx) }

// cUDF invokes a scalar UDF through the engine's CLR-like boundary; the
// FuncDef is resolved once at plan time, as a real plan would cache the
// method handle.
type cUDF struct {
	reg  *engine.FuncRegistry
	def  *engine.FuncDef
	args []compiled
	buf  []engine.Value
}

func (c *cUDF) eval(ctx *rowCtx) (engine.Value, error) {
	if cap(c.buf) < len(c.args) {
		c.buf = make([]engine.Value, len(c.args))
	}
	args := c.buf[:len(c.args)]
	for i, a := range c.args {
		v, err := a.eval(ctx)
		if err != nil {
			return engine.Null, err
		}
		args[i] = v
	}
	return c.reg.Call(c.def, args)
}

type cAggRef struct{ idx int }

func (c *cAggRef) eval(ctx *rowCtx) (engine.Value, error) { return ctx.aggVals[c.idx], nil }

type cBinary struct {
	op   string
	l, r compiled
}

func (c *cBinary) eval(ctx *rowCtx) (engine.Value, error) {
	l, err := c.l.eval(ctx)
	if err != nil {
		return engine.Null, err
	}
	// Short-circuit logical operators (SQL three-valued logic reduced to
	// two-valued with NULL = false, sufficient for the workload).
	switch c.op {
	case "AND":
		if !truthy(l) {
			return engine.IntValue(0), nil
		}
		r, err := c.r.eval(ctx)
		if err != nil {
			return engine.Null, err
		}
		return boolVal(truthy(r)), nil
	case "OR":
		if truthy(l) {
			return engine.IntValue(1), nil
		}
		r, err := c.r.eval(ctx)
		if err != nil {
			return engine.Null, err
		}
		return boolVal(truthy(r)), nil
	}
	r, err := c.r.eval(ctx)
	if err != nil {
		return engine.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return engine.Null, nil
	}
	switch c.op {
	case "+", "-", "*", "/", "%":
		return arith(c.op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return compare(c.op, l, r)
	}
	return engine.Null, fmt.Errorf("sql: unknown operator %q", c.op)
}

type cUnary struct {
	op string
	x  compiled
}

func (c *cUnary) eval(ctx *rowCtx) (engine.Value, error) {
	v, err := c.x.eval(ctx)
	if err != nil {
		return engine.Null, err
	}
	if v.IsNull() {
		return engine.Null, nil
	}
	switch c.op {
	case "-":
		if v.Kind == engine.ColInt64 {
			return engine.IntValue(-v.I), nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return engine.Null, err
		}
		return engine.FloatValue(-f), nil
	case "NOT":
		return boolVal(!truthy(v)), nil
	}
	return engine.Null, fmt.Errorf("sql: unknown unary %q", c.op)
}

func boolVal(b bool) engine.Value {
	if b {
		return engine.IntValue(1)
	}
	return engine.IntValue(0)
}

func truthy(v engine.Value) bool {
	switch v.Kind {
	case engine.ColInt64:
		return v.I != 0
	case engine.ColFloat64:
		return v.F != 0
	}
	return false
}

func arith(op string, l, r engine.Value) (engine.Value, error) {
	// Integer arithmetic stays integral except for division, matching
	// T-SQL only loosely (T-SQL integer division truncates; scientific
	// workloads here always use floats, so / promotes to float).
	if l.Kind == engine.ColInt64 && r.Kind == engine.ColInt64 && op != "/" {
		switch op {
		case "+":
			return engine.IntValue(l.I + r.I), nil
		case "-":
			return engine.IntValue(l.I - r.I), nil
		case "*":
			return engine.IntValue(l.I * r.I), nil
		case "%":
			if r.I == 0 {
				return engine.Null, fmt.Errorf("sql: modulo by zero")
			}
			return engine.IntValue(l.I % r.I), nil
		}
	}
	lf, err := l.AsFloat()
	if err != nil {
		return engine.Null, err
	}
	rf, err := r.AsFloat()
	if err != nil {
		return engine.Null, err
	}
	switch op {
	case "+":
		return engine.FloatValue(lf + rf), nil
	case "-":
		return engine.FloatValue(lf - rf), nil
	case "*":
		return engine.FloatValue(lf * rf), nil
	case "/":
		return engine.FloatValue(lf / rf), nil
	case "%":
		return engine.FloatValue(math.Mod(lf, rf)), nil
	}
	return engine.Null, fmt.Errorf("sql: unknown arithmetic %q", op)
}

func compare(op string, l, r engine.Value) (engine.Value, error) {
	var c int
	lb, lIsBin := binaryKind(l)
	rb, rIsBin := binaryKind(r)
	switch {
	case lIsBin && rIsBin:
		c = bytes.Compare(lb, rb)
	case lIsBin != rIsBin:
		return engine.Null, fmt.Errorf("%w: comparing binary with numeric", engine.ErrTypeError)
	default:
		lf, err := l.AsFloat()
		if err != nil {
			return engine.Null, err
		}
		rf, err := r.AsFloat()
		if err != nil {
			return engine.Null, err
		}
		if math.IsNaN(lf) || math.IsNaN(rf) {
			// IEEE semantics: NaN is unordered; only <> holds.
			return boolVal(op == "<>"), nil
		}
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	}
	switch op {
	case "=":
		return boolVal(c == 0), nil
	case "<>":
		return boolVal(c != 0), nil
	case "<":
		return boolVal(c < 0), nil
	case "<=":
		return boolVal(c <= 0), nil
	case ">":
		return boolVal(c > 0), nil
	case ">=":
		return boolVal(c >= 0), nil
	}
	return engine.Null, fmt.Errorf("sql: unknown comparison %q", op)
}

func binaryKind(v engine.Value) ([]byte, bool) {
	if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
		return v.B, true
	}
	return nil, false
}

// ---- aggregate accumulators -------------------------------------------

type accumulator struct {
	kind  AggKind
	arg   compiled // nil for COUNT(*)
	count int64
	sum   float64
	min   float64
	max   float64
	any   bool
}

func (a *accumulator) add(ctx *rowCtx) error {
	if a.arg == nil { // COUNT(*)
		a.count++
		return nil
	}
	v, err := a.arg.eval(ctx)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	f, err := v.AsFloat()
	if err != nil {
		return err
	}
	a.count++
	a.sum += f
	if !a.any || f < a.min {
		a.min = f
	}
	if !a.any || f > a.max {
		a.max = f
	}
	a.any = true
	return nil
}

// merge folds another accumulator's partial state into a. The parallel
// aggregate scan merges per-worker partials in partition order.
func (a *accumulator) merge(b *accumulator) {
	a.count += b.count
	a.sum += b.sum
	if b.any {
		if !a.any || b.min < a.min {
			a.min = b.min
		}
		if !a.any || b.max > a.max {
			a.max = b.max
		}
		a.any = true
	}
}

func (a *accumulator) result() engine.Value {
	switch a.kind {
	case AggCount:
		return engine.IntValue(a.count)
	case AggSum:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.sum)
	case AggAvg:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.sum / float64(a.count))
	case AggMin:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.min)
	case AggMax:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.max)
	}
	return engine.Null
}

// ---- expression compilation ---------------------------------------------

// compileCtx carries plan-time state; aggregate arguments register
// accumulators here.
type compileCtx struct {
	db     *engine.DB
	schema *engine.Schema
	accs   []*accumulator
}

// compile turns an AST node into an executable expression. Inside an
// aggregate query, AggCall nodes become accumulator references and their
// arguments are compiled for the per-row pass.
func (cc *compileCtx) compile(e Expr, inAggQuery bool) (compiled, error) {
	switch n := e.(type) {
	case *NumberLit:
		if n.IsInt {
			return &cConst{engine.IntValue(n.I)}, nil
		}
		return &cConst{engine.FloatValue(n.F)}, nil
	case *StringLit:
		return &cConst{engine.BinaryValue([]byte(n.S))}, nil
	case *NullLit:
		return &cConst{engine.Null}, nil
	case *ColRef:
		idx := cc.schema.ColIndex(n.Name)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, n.Name)
		}
		if inAggQuery {
			// An aggregate query emits one row with no underlying scan row;
			// a bare column there has no value (T-SQL rejects this too, as
			// there is no GROUP BY in the dialect).
			return nil, fmt.Errorf("sql: column %q must appear inside an aggregate function", n.Name)
		}
		return &cCol{idx: idx}, nil
	case *Star:
		return nil, fmt.Errorf("sql: * outside COUNT(*)")
	case *AggCall:
		if !inAggQuery {
			return nil, fmt.Errorf("sql: aggregate in row context")
		}
		acc := &accumulator{kind: n.Kind}
		if n.Arg != nil {
			arg, err := cc.compile(n.Arg, false)
			if err != nil {
				return nil, err
			}
			acc.arg = arg
		}
		cc.accs = append(cc.accs, acc)
		return &cAggRef{idx: len(cc.accs) - 1}, nil
	case *FuncCall:
		def, err := cc.db.Funcs().Lookup(n.Name)
		if err != nil {
			return nil, err
		}
		args := make([]compiled, len(n.Args))
		for i, a := range n.Args {
			c, err := cc.compile(a, false)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		return &cUDF{reg: cc.db.Funcs(), def: def, args: args}, nil
	case *BinaryExpr:
		l, err := cc.compile(n.L, inAggQuery)
		if err != nil {
			return nil, err
		}
		r, err := cc.compile(n.R, inAggQuery)
		if err != nil {
			return nil, err
		}
		return &cBinary{op: n.Op, l: l, r: r}, nil
	case *UnaryExpr:
		x, err := cc.compile(n.X, inAggQuery)
		if err != nil {
			return nil, err
		}
		return &cUnary{op: n.Op, x: x}, nil
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}
