package sqlmini

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"sqlarray/internal/engine"
	"sqlarray/internal/obs"
)

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    [][]engine.Value
}

// Scalar returns the single value of a one-row one-column result.
func (r *Result) Scalar() (engine.Value, error) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return engine.Null, fmt.Errorf("sql: result is %dx%d, not scalar", len(r.Rows), len(r.Columns))
	}
	return r.Rows[0][0], nil
}

// Run parses, plans and executes a SELECT against db, materializing the
// full result. It is a thin wrapper over the streaming pipeline; use
// Query to consume rows incrementally.
func Run(db *engine.DB, query string) (*Result, error) {
	return RunWith(db, query, ExecOptions{})
}

// RunWith is Run with explicit execution options.
func RunWith(db *engine.DB, query string, opts ExecOptions) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecWith(db, stmt, opts)
}

// Exec plans and executes a parsed statement, materializing the result.
func Exec(db *engine.DB, stmt *SelectStmt) (*Result, error) {
	return ExecWith(db, stmt, ExecOptions{})
}

// ExecWith is Exec with explicit execution options.
func ExecWith(db *engine.DB, stmt *SelectStmt, opts ExecOptions) (res *Result, err error) {
	rows, err := StreamWith(db, stmt, opts)
	if err != nil {
		return nil, err
	}
	// Close releases the pipeline's page pins; a failure there is a real
	// engine error and must not be swallowed just because the drain
	// succeeded.
	defer func() {
		if cerr := rows.Close(); cerr != nil && err == nil {
			res, err = nil, cerr
		}
	}()
	res = &Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Query parses and executes a SELECT, returning a streaming row cursor.
// The caller must Close it (early termination releases pinned pages).
func Query(db *engine.DB, query string) (*Rows, error) {
	return QueryWith(db, query, ExecOptions{})
}

// QueryWith is Query with explicit execution options.
func QueryWith(db *engine.DB, query string, opts ExecOptions) (*Rows, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return StreamWith(db, stmt, opts)
}

// StreamWith plans a parsed statement and opens the operator pipeline,
// returning a streaming row cursor over it. The whole pipeline — every
// scan, every parallel worker, every MAX-column deref — reads through
// one snapshot, so the query observes a single commit no matter how
// many writers land while it streams (and no writer ever waits for it).
// The snapshot comes from ExecOptions.Snapshot when set; otherwise one
// is acquired here, owned by the Rows, and released by Rows.Close.
func StreamWith(db *engine.DB, stmt *SelectStmt, opts ExecOptions) (*Rows, error) {
	tbl, err := db.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	snap := opts.Snapshot
	owned := snap == nil
	if owned {
		snap = db.Snapshot()
	}
	fail := func(err error) (*Rows, error) {
		if owned {
			snap.Release()
		}
		return nil, err
	}
	pl, err := buildPipeline(db, tbl, stmt, snap, opts)
	if err != nil {
		return fail(err)
	}
	r := &Rows{columns: pl.columns, root: pl.root, plan: pl.plan}
	// Every query feeds the shared latency histogram; the heavier trace
	// state (registry snapshot for deltas, slow-log plumbing) is set up
	// only when this query is instrumented.
	r.lat = db.Metrics().Histogram("sql.query_latency")
	if opts.instrumented() {
		r.reg = db.Metrics()
		r.trace = opts.Trace
		if r.trace == nil {
			r.trace = &obs.QueryTrace{}
		}
		if r.trace.SQL == "" {
			r.trace.SQL = selectString(stmt)
		}
		r.slowThreshold = opts.SlowQueryThreshold
		r.slowLog = opts.SlowQueryLog
		// Captured before open: the B+tree descent and every page the
		// pipeline reads land in the delta, so the root plan node's
		// inclusive page count matches it.
		r.before = r.reg.Snapshot()
		r.trace.Start = time.Now()
	}
	r.started = time.Now()
	if err := pl.root.open(); err != nil {
		pl.root.close()
		return fail(err)
	}
	if owned {
		r.snap = snap
	}
	return r, nil
}

// Rows streams query results one row at a time:
//
//	rows, err := sqlmini.Query(db, "SELECT TOP 5 id, v1 FROM t")
//	defer rows.Close()
//	for rows.Next() {
//	    row := rows.Row()
//	}
//	err = rows.Err()
//
// Rows are materialized as they are yielded: a slice returned by Row
// remains valid after further Next calls and after Close.
type Rows struct {
	columns  []string
	root     operator
	snap     *engine.Snapshot // released on Close when the query owns it
	cur      []engine.Value
	err      error
	closed   bool
	closeErr error

	// Observability: the query's plan tree, the shared latency
	// histogram, and — for instrumented queries only — the trace to
	// finalize on Close plus the registry state to diff against.
	plan          *obs.PlanNode
	lat           *obs.Histogram
	started       time.Time
	reg           *obs.Registry
	trace         *obs.QueryTrace
	before        obs.Snapshot
	slowThreshold time.Duration
	slowLog       *obs.SlowLog
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.columns }

// Next advances to the next row, returning false at the end of the
// result set or on error (check Err).
func (r *Rows) Next() bool {
	if r.err != nil || r.closed {
		return false
	}
	ctx, err := r.root.next()
	if err != nil {
		r.err = err
		return false
	}
	if ctx == nil {
		return false
	}
	r.cur = ctx.out
	return true
}

// Row returns the current row. The slice is freshly materialized per row
// and safe to retain.
func (r *Rows) Row() []engine.Value { return r.cur }

// Err returns the first error encountered while streaming.
func (r *Rows) Err() error { return r.err }

// Close tears down the pipeline, releasing any pinned pages (including
// Batch-owned blob pins from in-flight MAX-column resolves) and the
// query's snapshot. It is idempotent: repeated calls return the first
// close's error without touching the (already released) pipeline again,
// and Next after Close always reports false.
func (r *Rows) Close() error {
	if r.closed {
		return r.closeErr
	}
	r.closed = true
	r.closeErr = r.root.close()
	if r.snap != nil {
		// After every pin is back (blob views alias snapshot-resolved
		// pages), so superseded page versions can retire.
		r.snap.Release()
	}
	r.finalize()
	return r.closeErr
}

// finalize records the query's latency and, for instrumented queries,
// completes the trace (duration, annotated plan, registry deltas) and
// emits the slow-query log entry when the threshold was crossed.
func (r *Rows) finalize() {
	d := time.Since(r.started)
	if r.lat != nil {
		r.lat.Observe(d)
	}
	if r.trace == nil {
		return
	}
	r.trace.Duration = d
	r.trace.Plan = r.plan
	r.trace.Delta = r.reg.Snapshot().Delta(r.before)
	if r.slowThreshold > 0 && d >= r.slowThreshold {
		log := r.slowLog
		if log == nil {
			log = obs.DefaultSlowLog
		}
		log.Log(r.trace)
	}
}

// ---- plan-time compilation -------------------------------------------

// rowCtx carries per-row state through the operator pipeline: the
// current key and row view below the projection, aggregate results above
// the aggregate operator, and the materialized output row once
// projected. In the batch pipeline a row has no RowView — row-wise
// evaluation over batch rows binds (batch, idx) instead and column
// references read the decoded batch column.
type rowCtx struct {
	key     int64
	row     *engine.RowView
	batch   *Batch         // batch-backed row when row == nil
	idx     int            // row index within batch
	aggVals []engine.Value // filled by the aggregate operators
	out     []engine.Value // filled by projectOp; safe to retain
}

// compiled is an executable expression. eval produces one value for the
// current row; evalBatch produces a vector of values for rows [0, n) of
// a batch. Nodes whose per-row semantics matter (UDF call counts,
// AND/OR short-circuiting) implement evalBatch as a row-wise loop over
// the batch; the data-parallel nodes (columns, constants, arithmetic,
// comparisons) are vectorized. The returned slice is scratch owned by
// the node — valid until its next evalBatch call — except for cCol,
// which aliases the batch column directly.
type compiled interface {
	eval(ctx *rowCtx) (engine.Value, error)
	evalBatch(b *Batch, n int) ([]engine.Value, error)
}

// ensureVec sizes a scratch vector to n values.
func ensureVec(vec *[]engine.Value, n int) []engine.Value {
	if cap(*vec) < n {
		*vec = make([]engine.Value, n)
	}
	*vec = (*vec)[:n]
	return *vec
}

// evalRowwise is the generic batch fallback: evaluate c once per batch
// row through the row-at-a-time path, preserving per-row semantics.
func evalRowwise(c compiled, b *Batch, n int, scratch *[]engine.Value) ([]engine.Value, error) {
	vec := ensureVec(scratch, n)
	ctx := rowCtx{batch: b, aggVals: b.aggVals}
	for i := 0; i < n; i++ {
		ctx.idx = i
		if i < len(b.keys) {
			ctx.key = b.keys[i]
		}
		v, err := c.eval(&ctx)
		if err != nil {
			return nil, err
		}
		vec[i] = v
	}
	return vec, nil
}

type cConst struct {
	v   engine.Value
	vec []engine.Value
}

func (c *cConst) eval(*rowCtx) (engine.Value, error) { return c.v, nil }

func (c *cConst) evalBatch(b *Batch, n int) ([]engine.Value, error) {
	vec := ensureVec(&c.vec, n)
	for i := range vec {
		vec[i] = c.v
	}
	return vec, nil
}

type cCol struct{ idx int }

// cMaxCol reads a VARBINARY(MAX) column. On the row the column holds
// only a 12-byte blob ref; this node materializes it into the array
// payload so UDFs, comparisons and projections over MAX columns see the
// same bytes short VARBINARY columns yield. On the batch path the
// resolve is zero-copy for single-chunk blobs: the returned bytes alias
// a pinned chunk page owned by the batch's pin set, released when the
// batch is recycled or the pipeline closes. The row pipeline (and the
// reference executor built on it) uses the copying read — there is no
// batch to own a pin there.
type cMaxCol struct {
	tbl  *engine.Table
	snap *engine.Snapshot // the query's read view; nil falls back to live pages
	idx  int
	vec  []engine.Value
}

func (c *cMaxCol) resolve(refBytes []byte, pins *engine.BlobPins) (engine.Value, error) {
	// Resolve through the query's snapshot: a ref read from a snapshot
	// row must dereference the same commit's chunk pages, or a
	// concurrent UPDATE that freed and reused the blob's pages could
	// hand this scan foreign bytes.
	var payload []byte
	var err error
	if c.snap != nil {
		payload, err = c.tbl.ResolveMaxAt(c.snap, refBytes, pins)
	} else {
		payload, err = c.tbl.ResolveMax(refBytes, pins)
	}
	if err != nil {
		return engine.Null, err
	}
	return engine.BinaryMaxValue(payload), nil
}

func (c *cMaxCol) eval(ctx *rowCtx) (engine.Value, error) {
	if ctx.row != nil {
		v, err := ctx.row.Col(c.idx)
		if err != nil || v.IsNull() {
			return v, err
		}
		return c.resolve(v.B, nil)
	}
	col := ctx.batch.cols[c.idx]
	if col == nil {
		return engine.Null, fmt.Errorf("sql: internal: column %d not decoded into batch", c.idx)
	}
	v := col[ctx.idx]
	if v.IsNull() {
		return v, nil
	}
	return c.resolve(v.B, ctx.batch.pinSet())
}

func (c *cMaxCol) evalBatch(b *Batch, n int) ([]engine.Value, error) {
	col := b.cols[c.idx]
	if col == nil {
		return nil, fmt.Errorf("sql: internal: column %d not decoded into batch", c.idx)
	}
	vec := ensureVec(&c.vec, n)
	for i := 0; i < n; i++ {
		v := col[i]
		if v.IsNull() {
			vec[i] = engine.Null
			continue
		}
		r, err := c.resolve(v.B, b.pinSet())
		if err != nil {
			return nil, err
		}
		vec[i] = r
	}
	return vec, nil
}

func (c *cCol) eval(ctx *rowCtx) (engine.Value, error) {
	if ctx.row != nil {
		return ctx.row.Col(c.idx)
	}
	col := ctx.batch.cols[c.idx]
	if col == nil {
		return engine.Null, fmt.Errorf("sql: internal: column %d not decoded into batch", c.idx)
	}
	return col[ctx.idx], nil
}

func (c *cCol) evalBatch(b *Batch, n int) ([]engine.Value, error) {
	col := b.cols[c.idx]
	if col == nil {
		return nil, fmt.Errorf("sql: internal: column %d not decoded into batch", c.idx)
	}
	return col[:n], nil
}

// cUDF invokes a scalar UDF through the engine's CLR-like boundary; the
// FuncDef is resolved once at plan time, as a real plan would cache the
// method handle.
type cUDF struct {
	reg  *engine.FuncRegistry
	def  *engine.FuncDef
	args []compiled
	buf  []engine.Value
	vec  []engine.Value
}

func (c *cUDF) eval(ctx *rowCtx) (engine.Value, error) {
	if cap(c.buf) < len(c.args) {
		c.buf = make([]engine.Value, len(c.args))
	}
	args := c.buf[:len(c.args)]
	for i, a := range c.args {
		v, err := a.eval(ctx)
		if err != nil {
			return engine.Null, err
		}
		args[i] = v
	}
	return c.reg.Call(c.def, args)
}

// evalBatch stays row-wise: each row must cross the UDF boundary exactly
// once, in order, with its own argument evaluation.
func (c *cUDF) evalBatch(b *Batch, n int) ([]engine.Value, error) {
	return evalRowwise(c, b, n, &c.vec)
}

type cAggRef struct {
	idx int
	vec []engine.Value
}

func (c *cAggRef) eval(ctx *rowCtx) (engine.Value, error) { return ctx.aggVals[c.idx], nil }

func (c *cAggRef) evalBatch(b *Batch, n int) ([]engine.Value, error) {
	if c.idx >= len(b.aggVals) {
		return nil, fmt.Errorf("sql: internal: aggregate ref below the aggregate operator")
	}
	vec := ensureVec(&c.vec, n)
	for i := range vec {
		vec[i] = b.aggVals[c.idx]
	}
	return vec, nil
}

type cBinary struct {
	op   string
	l, r compiled
	vec  []engine.Value
}

// evalBatch vectorizes arithmetic and comparison over both operand
// vectors. AND/OR fall back to the row-wise loop so short-circuit
// semantics (which UDF calls happen, which errors surface) are identical
// to the row pipeline.
func (c *cBinary) evalBatch(b *Batch, n int) ([]engine.Value, error) {
	switch c.op {
	case "AND", "OR":
		return evalRowwise(c, b, n, &c.vec)
	}
	l, err := c.l.evalBatch(b, n)
	if err != nil {
		return nil, err
	}
	r, err := c.r.evalBatch(b, n)
	if err != nil {
		return nil, err
	}
	vec := ensureVec(&c.vec, n)
	switch c.op {
	case "+", "-", "*", "/", "%":
		for i := 0; i < n; i++ {
			lv, rv := l[i], r[i]
			// Fast path: FLOAT op FLOAT inline, skipping the generic
			// coercion. (Division promotes to float anyway, so int pairs
			// still go through arith.)
			if lv.Kind == engine.ColFloat64 && rv.Kind == engine.ColFloat64 {
				switch c.op {
				case "+":
					vec[i] = engine.FloatValue(lv.F + rv.F)
					continue
				case "-":
					vec[i] = engine.FloatValue(lv.F - rv.F)
					continue
				case "*":
					vec[i] = engine.FloatValue(lv.F * rv.F)
					continue
				case "/":
					vec[i] = engine.FloatValue(lv.F / rv.F)
					continue
				}
			}
			if lv.IsNull() || rv.IsNull() {
				vec[i] = engine.Null
				continue
			}
			v, err := arith(c.op, lv, rv)
			if err != nil {
				return nil, err
			}
			vec[i] = v
		}
	case "=", "<>", "<", "<=", ">", ">=":
		for i := 0; i < n; i++ {
			lv, rv := l[i], r[i]
			switch {
			case lv.Kind == engine.ColFloat64 && rv.Kind == engine.ColFloat64:
				// IEEE comparisons agree with compare()'s NaN handling:
				// every operator is false on NaN except <>.
				vec[i] = boolVal(cmpFloat(c.op, lv.F, rv.F))
			case lv.Kind == engine.ColInt64 && rv.Kind == engine.ColInt64:
				vec[i] = boolVal(cmpInt(c.op, lv.I, rv.I))
			case lv.IsNull() || rv.IsNull():
				vec[i] = engine.Null
			default:
				v, err := compare(c.op, lv, rv)
				if err != nil {
					return nil, err
				}
				vec[i] = v
			}
		}
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", c.op)
	}
	return vec, nil
}

func cmpFloat(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func cmpInt(op string, a, b int64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func (c *cBinary) eval(ctx *rowCtx) (engine.Value, error) {
	l, err := c.l.eval(ctx)
	if err != nil {
		return engine.Null, err
	}
	// Short-circuit logical operators (SQL three-valued logic reduced to
	// two-valued with NULL = false, sufficient for the workload).
	switch c.op {
	case "AND":
		if !truthy(l) {
			return engine.IntValue(0), nil
		}
		r, err := c.r.eval(ctx)
		if err != nil {
			return engine.Null, err
		}
		return boolVal(truthy(r)), nil
	case "OR":
		if truthy(l) {
			return engine.IntValue(1), nil
		}
		r, err := c.r.eval(ctx)
		if err != nil {
			return engine.Null, err
		}
		return boolVal(truthy(r)), nil
	}
	r, err := c.r.eval(ctx)
	if err != nil {
		return engine.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return engine.Null, nil
	}
	switch c.op {
	case "+", "-", "*", "/", "%":
		return arith(c.op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return compare(c.op, l, r)
	}
	return engine.Null, fmt.Errorf("sql: unknown operator %q", c.op)
}

type cUnary struct {
	op  string
	x   compiled
	vec []engine.Value
}

// evalBatch vectorizes negation; NOT goes row-wise because its operand
// may contain short-circuiting logic or UDF calls.
func (c *cUnary) evalBatch(b *Batch, n int) ([]engine.Value, error) {
	if c.op != "-" {
		return evalRowwise(c, b, n, &c.vec)
	}
	x, err := c.x.evalBatch(b, n)
	if err != nil {
		return nil, err
	}
	vec := ensureVec(&c.vec, n)
	for i := 0; i < n; i++ {
		v := x[i]
		switch {
		case v.IsNull():
			vec[i] = engine.Null
		case v.Kind == engine.ColInt64:
			vec[i] = engine.IntValue(-v.I)
		default:
			f, err := v.AsFloat()
			if err != nil {
				return nil, err
			}
			vec[i] = engine.FloatValue(-f)
		}
	}
	return vec, nil
}

func (c *cUnary) eval(ctx *rowCtx) (engine.Value, error) {
	v, err := c.x.eval(ctx)
	if err != nil {
		return engine.Null, err
	}
	if v.IsNull() {
		return engine.Null, nil
	}
	switch c.op {
	case "-":
		if v.Kind == engine.ColInt64 {
			return engine.IntValue(-v.I), nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return engine.Null, err
		}
		return engine.FloatValue(-f), nil
	case "NOT":
		return boolVal(!truthy(v)), nil
	}
	return engine.Null, fmt.Errorf("sql: unknown unary %q", c.op)
}

func boolVal(b bool) engine.Value {
	if b {
		return engine.IntValue(1)
	}
	return engine.IntValue(0)
}

func truthy(v engine.Value) bool {
	switch v.Kind {
	case engine.ColInt64:
		return v.I != 0
	case engine.ColFloat64:
		return v.F != 0
	}
	return false
}

func arith(op string, l, r engine.Value) (engine.Value, error) {
	// Integer arithmetic stays integral except for division, matching
	// T-SQL only loosely (T-SQL integer division truncates; scientific
	// workloads here always use floats, so / promotes to float).
	if l.Kind == engine.ColInt64 && r.Kind == engine.ColInt64 && op != "/" {
		switch op {
		case "+":
			return engine.IntValue(l.I + r.I), nil
		case "-":
			return engine.IntValue(l.I - r.I), nil
		case "*":
			return engine.IntValue(l.I * r.I), nil
		case "%":
			if r.I == 0 {
				return engine.Null, fmt.Errorf("sql: modulo by zero")
			}
			return engine.IntValue(l.I % r.I), nil
		}
	}
	lf, err := l.AsFloat()
	if err != nil {
		return engine.Null, err
	}
	rf, err := r.AsFloat()
	if err != nil {
		return engine.Null, err
	}
	switch op {
	case "+":
		return engine.FloatValue(lf + rf), nil
	case "-":
		return engine.FloatValue(lf - rf), nil
	case "*":
		return engine.FloatValue(lf * rf), nil
	case "/":
		return engine.FloatValue(lf / rf), nil
	case "%":
		return engine.FloatValue(math.Mod(lf, rf)), nil
	}
	return engine.Null, fmt.Errorf("sql: unknown arithmetic %q", op)
}

func compare(op string, l, r engine.Value) (engine.Value, error) {
	var c int
	lb, lIsBin := binaryKind(l)
	rb, rIsBin := binaryKind(r)
	switch {
	case lIsBin && rIsBin:
		c = bytes.Compare(lb, rb)
	case lIsBin != rIsBin:
		return engine.Null, fmt.Errorf("%w: comparing binary with numeric", engine.ErrTypeError)
	case l.Kind == engine.ColInt64 && r.Kind == engine.ColInt64:
		// BIGINT pairs compare exactly (as in T-SQL); going through
		// float64 would collapse values past 2^53. This is also what
		// keeps the row and batch pipelines identical — the batch
		// executor's int fast path is exact.
		return boolVal(cmpInt(op, l.I, r.I)), nil
	default:
		lf, err := l.AsFloat()
		if err != nil {
			return engine.Null, err
		}
		rf, err := r.AsFloat()
		if err != nil {
			return engine.Null, err
		}
		if math.IsNaN(lf) || math.IsNaN(rf) {
			// IEEE semantics: NaN is unordered; only <> holds.
			return boolVal(op == "<>"), nil
		}
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	}
	switch op {
	case "=":
		return boolVal(c == 0), nil
	case "<>":
		return boolVal(c != 0), nil
	case "<":
		return boolVal(c < 0), nil
	case "<=":
		return boolVal(c <= 0), nil
	case ">":
		return boolVal(c > 0), nil
	case ">=":
		return boolVal(c >= 0), nil
	}
	return engine.Null, fmt.Errorf("sql: unknown comparison %q", op)
}

func binaryKind(v engine.Value) ([]byte, bool) {
	if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
		return v.B, true
	}
	return nil, false
}

// ---- aggregate accumulators -------------------------------------------

type accumulator struct {
	kind  AggKind
	arg   compiled // nil for COUNT(*)
	count int64
	sum   float64
	min   float64
	max   float64
	any   bool
}

func (a *accumulator) add(ctx *rowCtx) error {
	if a.arg == nil { // COUNT(*)
		a.count++
		return nil
	}
	v, err := a.arg.eval(ctx)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	f, err := v.AsFloat()
	if err != nil {
		return err
	}
	a.addFloat(f)
	return nil
}

// addBatch folds rows [0, n) of a batch into the accumulator, evaluating
// the argument expression once over the whole batch.
func (a *accumulator) addBatch(b *Batch, n int) error {
	if a.arg == nil { // COUNT(*)
		a.count += int64(n)
		return nil
	}
	vals, err := a.arg.evalBatch(b, n)
	if err != nil {
		return err
	}
	for i := range vals[:n] {
		var f float64
		switch vals[i].Kind {
		case engine.ColFloat64:
			f = vals[i].F
		case engine.ColInt64:
			f = float64(vals[i].I)
		case 0:
			continue // SQL aggregates skip NULLs
		default:
			var err error
			if f, err = vals[i].AsFloat(); err != nil {
				return err
			}
		}
		a.addFloat(f)
	}
	return nil
}

func (a *accumulator) addFloat(f float64) {
	a.count++
	a.sum += f
	if !a.any || f < a.min {
		a.min = f
	}
	if !a.any || f > a.max {
		a.max = f
	}
	a.any = true
}

// merge folds another accumulator's partial state into a. The parallel
// aggregate scan merges per-worker partials in partition order.
func (a *accumulator) merge(b *accumulator) {
	a.count += b.count
	a.sum += b.sum
	if b.any {
		if !a.any || b.min < a.min {
			a.min = b.min
		}
		if !a.any || b.max > a.max {
			a.max = b.max
		}
		a.any = true
	}
}

func (a *accumulator) result() engine.Value {
	switch a.kind {
	case AggCount:
		return engine.IntValue(a.count)
	case AggSum:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.sum)
	case AggAvg:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.sum / float64(a.count))
	case AggMin:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.min)
	case AggMax:
		if !a.any {
			return engine.Null
		}
		return engine.FloatValue(a.max)
	}
	return engine.Null
}

// ---- expression compilation ---------------------------------------------

// compileCtx carries plan-time state; aggregate arguments register
// accumulators here, and column references mark their schema index in
// used so the batch scan decodes only referenced columns.
type compileCtx struct {
	db     *engine.DB
	tbl    *engine.Table
	schema *engine.Schema
	snap   *engine.Snapshot // read view for MAX-column derefs; may be nil
	accs   []*accumulator
	used   []bool
}

// compile turns an AST node into an executable expression. Inside an
// aggregate query, AggCall nodes become accumulator references and their
// arguments are compiled for the per-row pass.
func (cc *compileCtx) compile(e Expr, inAggQuery bool) (compiled, error) {
	switch n := e.(type) {
	case *NumberLit:
		if n.IsInt {
			return &cConst{v: engine.IntValue(n.I)}, nil
		}
		return &cConst{v: engine.FloatValue(n.F)}, nil
	case *StringLit:
		return &cConst{v: engine.BinaryValue([]byte(n.S))}, nil
	case *NullLit:
		return &cConst{v: engine.Null}, nil
	case *ColRef:
		idx := cc.schema.ColIndex(n.Name)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, n.Name)
		}
		cc.used[idx] = true
		if inAggQuery {
			// An aggregate query emits one row with no underlying scan row;
			// a bare column there has no value (T-SQL rejects this too, as
			// there is no GROUP BY in the dialect).
			return nil, fmt.Errorf("sql: column %q must appear inside an aggregate function", n.Name)
		}
		if cc.schema.Columns[idx].Type == engine.ColVarBinaryMax {
			return &cMaxCol{tbl: cc.tbl, snap: cc.snap, idx: idx}, nil
		}
		return &cCol{idx: idx}, nil
	case *Star:
		return nil, fmt.Errorf("sql: * outside COUNT(*)")
	case *AggCall:
		if !inAggQuery {
			return nil, fmt.Errorf("sql: aggregate in row context")
		}
		acc := &accumulator{kind: n.Kind}
		if n.Arg != nil {
			arg, err := cc.compile(n.Arg, false)
			if err != nil {
				return nil, err
			}
			acc.arg = arg
		}
		cc.accs = append(cc.accs, acc)
		return &cAggRef{idx: len(cc.accs) - 1}, nil
	case *FuncCall:
		def, err := cc.db.Funcs().Lookup(n.Name)
		if err != nil {
			return nil, err
		}
		args := make([]compiled, len(n.Args))
		for i, a := range n.Args {
			c, err := cc.compile(a, false)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		return &cUDF{reg: cc.db.Funcs(), def: def, args: args}, nil
	case *BinaryExpr:
		l, err := cc.compile(n.L, inAggQuery)
		if err != nil {
			return nil, err
		}
		r, err := cc.compile(n.R, inAggQuery)
		if err != nil {
			return nil, err
		}
		return &cBinary{op: n.Op, l: l, r: r}, nil
	case *UnaryExpr:
		x, err := cc.compile(n.X, inAggQuery)
		if err != nil {
			return nil, err
		}
		return &cUnary{op: n.Op, x: x}, nil
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}
