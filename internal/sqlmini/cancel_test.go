package sqlmini

import (
	"context"
	"errors"
	"testing"
)

// The executor polls ExecOptions.Ctx in every operator scan/drain loop
// (the ctxloop analyzer proves the polls exist; these tests prove they
// work): a canceled context aborts the query with context.Canceled and
// the normal close path still releases every page pin.

func TestCancelBeforeFirstRow(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, rowPipe := range []bool{false, true} {
		rows, err := QueryWith(db, "SELECT id, v1 FROM Tscalar", ExecOptions{Ctx: ctx, RowPipeline: rowPipe})
		if err != nil {
			t.Fatalf("RowPipeline=%v: open: %v", rowPipe, err)
		}
		if rows.Next() {
			t.Errorf("RowPipeline=%v: Next yielded a row under a canceled ctx", rowPipe)
		}
		if !errors.Is(rows.Err(), context.Canceled) {
			t.Errorf("RowPipeline=%v: Err = %v, want context.Canceled", rowPipe, rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Errorf("RowPipeline=%v: Close: %v", rowPipe, err)
		}
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after canceled queries = %d", got)
	}
}

func TestCancelMidStream(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A small batch keeps the drain's buffered tail short, so the cancel
	// lands within a few rows instead of after a full 1024-row batch.
	rows, err := QueryWith(db, "SELECT id FROM Tscalar", ExecOptions{Ctx: ctx, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
		if n == 1 {
			cancel()
		}
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v after cancel mid-stream, want context.Canceled", rows.Err())
	}
	if n == 0 || n >= 100 {
		t.Errorf("drained %d rows, want a partial result (0 < n < 100)", n)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after mid-stream cancel = %d", got)
	}
}

func TestCancelAggregates(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []ExecOptions{
		{Ctx: ctx},                    // serial batch aggregate
		{Ctx: ctx, RowPipeline: true}, // serial row aggregate
		{Ctx: ctx, Parallelism: 2, ParallelThreshold: 1},                    // parallel batch fan-out
		{Ctx: ctx, Parallelism: 2, ParallelThreshold: 1, RowPipeline: true}, // parallel row fan-out
	}
	for i, opts := range cases {
		_, err := RunWith(db, "SELECT SUM(v1), COUNT(*) FROM Tscalar", opts)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("case %d: err = %v, want context.Canceled", i, err)
		}
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after canceled aggregates = %d", got)
	}
}

func TestCancelDML(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sql := range []string{
		"DELETE FROM Tscalar WHERE v1 >= 0",
		"UPDATE Tscalar SET v1 = v1 + 1 WHERE v1 >= 0",
	} {
		if _, err := ExecuteWith(db, sql, ExecOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", sql, err)
		}
	}
	// The canceled read phase must not have written anything.
	if got := scalarFloat(t, db, "SELECT COUNT(*) FROM Tscalar"); got != 100 {
		t.Errorf("COUNT(*) after canceled DELETE = %g, want 100", got)
	}
	if got := scalarFloat(t, db, "SELECT SUM(v1) FROM Tscalar"); got != 4950 {
		t.Errorf("SUM(v1) after canceled UPDATE = %g, want 4950", got)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after canceled DML = %d", got)
	}
}
