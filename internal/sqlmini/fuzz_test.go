package sqlmini

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary input. The
// invariant: Parse never panics (no slice overruns, no unbounded
// recursion) — it returns a statement or an error. The seed corpus is
// the golden query set plus shapes chosen to reach every lexer state.
func FuzzParse(f *testing.F) {
	for _, q := range goldenQueries {
		f.Add(q)
	}
	for _, q := range []string{
		"",
		"SELECT",
		"SELECT * FROM t",
		"SELECT TOP 0 x FROM t",
		"SELECT -1e309, .5, 1.2e-3 FROM t",
		"SELECT 'it''s' FROM t",
		"SELECT 'unterminated FROM t",
		"SELECT dbo.f(a, b, c) FROM t WITH (NOLOCK) WHERE NOT a = 1 LIMIT 2",
		"SELECT ((((((1)))))) FROM t -- comment",
		"SELECT a FROM t WHERE a <> b AND a <= b OR a >= b",
		"SELECT " + strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64) + " FROM t",
		"SELECT " + strings.Repeat("NOT ", 300) + "1 FROM t",
		"SELECT COUNT(*) n FROM t WHERE x % 2 = 0",
		"SELECT NULL, -x, +x FROM éé",
	} {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned neither statement nor error", src)
		}
		if err != nil && stmt != nil {
			t.Fatalf("Parse(%q) returned both statement and error %v", src, err)
		}
	})
}
