package arraysugar

import (
	"strings"
	"testing"
)

// FuzzTranslate drives the subscript pre-parser with arbitrary input.
// The invariant: Translate never panics — hostile bracket nesting,
// unterminated strings and ragged subscripts all come back as errors.
func FuzzTranslate(f *testing.F) {
	cols := Columns{
		"v": "FloatArray",
		"m": "FloatArray",
		"c": "FloatArrayMax",
		"w": "IntArray",
	}
	for _, q := range []string{
		"SELECT v[3] FROM t",
		"SELECT m[1, 0] FROM t",
		"SELECT v[1:4] FROM t",
		"SELECT c[2, 0:3] FROM t",
		"SELECT v[1 + 2] FROM t",
		"SELECT v[w[0]] FROM t",
		"SELECT v[w[v[w[0]]]] FROM t",
		"SELECT 'v[0] inside a string' FROM t",
		"-- v[0] inside a comment",
		"SELECT unknowncol[0] FROM t",
		"SELECT v[ FROM t",
		"SELECT v[] FROM t",
		"SELECT v[1:2:3] FROM t",
		"SELECT v[1, 2, 3, 4, 5, 6, 7] FROM t",
		"SELECT v['unterminated FROM t",
		"SELECT " + strings.Repeat("v[", 80) + "0" + strings.Repeat("]", 80) + " FROM t",
	} {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		out, err := Translate(src, cols)
		if err != nil {
			return
		}
		// A successful translation of subscript-free input must be the
		// identity: the rewriter only touches col[...] forms.
		if !strings.ContainsRune(src, '[') && out != src {
			t.Fatalf("Translate(%q) rewrote subscript-free input to %q", src, out)
		}
	})
}
