// Package arraysugar implements the pre-parser the paper's conclusions
// wish for (§8): "A syntactic sugar to T-SQL and a pre-parser would be
// desirable that translates a special flavor of SQL designed for array
// notation to standard T-SQL with function calls. This could be achieved
// by writing a specialized .NET database connector that provides the
// translation."
//
// Translate rewrites subscript expressions on known array columns into
// the §5.1 function surface:
//
//	v[3]          ->  FloatArray.Item_1(v, 3)
//	m[1, 0]       ->  FloatArray.Item_2(m, 1, 0)
//	a[1:4]        ->  FloatArray.Subarray(a, IntArray.Vector_1(1),
//	                      IntArray.Vector_1((4)-(1)), 0)
//	c[2, 0:3]     ->  FloatArrayMax.Subarray(c, IntArray.Vector_2(2, 0),
//	                      IntArray.Vector_2(1, (3)-(0)), 1)   -- collapse
//
// Index expressions may themselves be arbitrary (they are copied through
// and re-translated recursively), and slices follow Go's half-open
// convention. The column→schema mapping plays the role of the catalog
// metadata a real connector would read.
package arraysugar

import (
	"fmt"
	"strings"
)

// Error is a translation error with statement offset.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("arraysugar: at offset %d: %s", e.Pos, e.Msg) }

// Columns maps column names (case-insensitive) to their array schema
// ("FloatArray", "FloatArrayMax", "IntArray", ...).
type Columns map[string]string

func (c Columns) schemaFor(name string) (string, bool) {
	if s, ok := c[name]; ok {
		return s, true
	}
	for k, s := range c {
		if strings.EqualFold(k, name) {
			return s, true
		}
	}
	return "", false
}

// maxSubscriptDepth bounds how deeply subscripts may nest inside each
// other (a[b[c[...]]]). Real queries nest once or twice; the cap turns
// pathological input into an error instead of unbounded recursion — the
// invariant FuzzTranslate enforces.
const maxSubscriptDepth = 64

// Translate rewrites all subscript sugar in query. Text inside string
// literals and comments is left untouched. Subscripts on identifiers
// not present in cols are an error (catching typos early, as a connector
// with catalog access would).
func Translate(query string, cols Columns) (string, error) {
	return translateAt(query, cols, 0)
}

func translateAt(query string, cols Columns, depth int) (string, error) {
	if depth > maxSubscriptDepth {
		return "", &Error{Pos: 0, Msg: fmt.Sprintf("subscript nesting exceeds %d levels", maxSubscriptDepth)}
	}
	t := &translator{src: query, cols: cols, depth: depth}
	out, err := t.run(0, len(query))
	if err != nil {
		return "", err
	}
	return out, nil
}

type translator struct {
	src   string
	cols  Columns
	depth int
}

// run translates src[from:to].
func (t *translator) run(from, to int) (string, error) {
	var sb strings.Builder
	i := from
	for i < to {
		c := t.src[i]
		switch {
		case c == '\'':
			end, err := t.skipString(i)
			if err != nil {
				return "", err
			}
			sb.WriteString(t.src[i:end])
			i = end
		case c == '-' && i+1 < to && t.src[i+1] == '-':
			end := i
			for end < to && t.src[end] != '\n' {
				end++
			}
			sb.WriteString(t.src[i:end])
			i = end
		case isIdentStart(c):
			start := i
			for i < to && isIdentPart(t.src[i]) {
				i++
			}
			name := t.src[start:i]
			// Lookahead (skipping spaces) for '['.
			j := i
			for j < to && (t.src[j] == ' ' || t.src[j] == '\t' || t.src[j] == '\n' || t.src[j] == '\r') {
				j++
			}
			if j < to && t.src[j] == '[' {
				schema, ok := t.cols.schemaFor(name)
				if !ok {
					return "", &Error{Pos: start, Msg: fmt.Sprintf("subscript on unknown array column %q", name)}
				}
				close, err := t.matchBracket(j)
				if err != nil {
					return "", err
				}
				call, err := t.rewriteSubscript(schema, name, j+1, close)
				if err != nil {
					return "", err
				}
				sb.WriteString(call)
				i = close + 1
			} else {
				sb.WriteString(name)
			}
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return sb.String(), nil
}

// skipString returns the index just past a quoted literal starting at i.
func (t *translator) skipString(i int) (int, error) {
	j := i + 1
	for j < len(t.src) {
		if t.src[j] == '\'' {
			if j+1 < len(t.src) && t.src[j+1] == '\'' {
				j += 2
				continue
			}
			return j + 1, nil
		}
		j++
	}
	return 0, &Error{Pos: i, Msg: "unterminated string literal"}
}

// matchBracket returns the index of the ']' matching the '[' at i,
// honouring nesting and string literals.
func (t *translator) matchBracket(i int) (int, error) {
	depth := 0
	j := i
	for j < len(t.src) {
		switch t.src[j] {
		case '\'':
			end, err := t.skipString(j)
			if err != nil {
				return 0, err
			}
			j = end
			continue
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				return j, nil
			}
		}
		j++
	}
	return 0, &Error{Pos: i, Msg: "unbalanced '['"}
}

// subscriptDim is one comma-separated dimension: an index or a lo:hi
// slice (either side may be empty only for errors; both required here).
type subscriptDim struct {
	isSlice bool
	a, b    string // index, or lo/hi
	pos     int
}

// rewriteSubscript turns col[...] (contents at src[from:to]) into the
// equivalent function call.
func (t *translator) rewriteSubscript(schema, col string, from, to int) (string, error) {
	dims, err := t.splitDims(from, to)
	if err != nil {
		return "", err
	}
	if len(dims) == 0 {
		return "", &Error{Pos: from, Msg: "empty subscript"}
	}
	if len(dims) > 6 {
		return "", &Error{Pos: from, Msg: fmt.Sprintf("%d subscripts exceed the 6-dimension limit", len(dims))}
	}
	// Recursively translate each dimension expression (subscripts can
	// nest: a[b[0]]).
	for i := range dims {
		if dims[i].a, err = translateAt(dims[i].a, t.cols, t.depth+1); err != nil {
			return "", err
		}
		if dims[i].isSlice {
			if dims[i].b, err = translateAt(dims[i].b, t.cols, t.depth+1); err != nil {
				return "", err
			}
		}
	}
	anySlice := false
	for _, d := range dims {
		if d.isSlice {
			anySlice = true
			break
		}
	}
	if !anySlice {
		// Pure item access -> Item_N.
		args := make([]string, 0, len(dims))
		for _, d := range dims {
			args = append(args, strings.TrimSpace(d.a))
		}
		return fmt.Sprintf("%s.Item_%d(%s, %s)", schema, len(dims), col, strings.Join(args, ", ")), nil
	}
	// Mixed access -> Subarray with collapse=1 so bare indices drop out.
	offs := make([]string, 0, len(dims))
	sizes := make([]string, 0, len(dims))
	for _, d := range dims {
		a := strings.TrimSpace(d.a)
		if d.isSlice {
			b := strings.TrimSpace(d.b)
			if a == "" || b == "" {
				return "", &Error{Pos: d.pos, Msg: "slice bounds must both be given (lo:hi)"}
			}
			offs = append(offs, a)
			sizes = append(sizes, fmt.Sprintf("(%s)-(%s)", b, a))
		} else {
			offs = append(offs, a)
			sizes = append(sizes, "1")
		}
	}
	n := len(dims)
	return fmt.Sprintf("%s.Subarray(%s, IntArray.Vector_%d(%s), IntArray.Vector_%d(%s), 1)",
		schema, col, n, strings.Join(offs, ", "), n, strings.Join(sizes, ", ")), nil
}

// splitDims splits the bracket contents on top-level commas, and each
// part on a top-level ':'.
func (t *translator) splitDims(from, to int) ([]subscriptDim, error) {
	var dims []subscriptDim
	depth := 0
	start := from
	colon := -1
	flush := func(end int) error {
		raw := t.src[start:end]
		if strings.TrimSpace(raw) == "" {
			return &Error{Pos: start, Msg: "empty subscript dimension"}
		}
		d := subscriptDim{pos: start}
		if colon >= 0 {
			d.isSlice = true
			d.a = t.src[start:colon]
			d.b = t.src[colon+1 : end]
		} else {
			d.a = raw
		}
		dims = append(dims, d)
		colon = -1
		return nil
	}
	j := from
	for j < to {
		switch t.src[j] {
		case '\'':
			end, err := t.skipString(j)
			if err != nil {
				return nil, err
			}
			j = end
			continue
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(j); err != nil {
					return nil, err
				}
				start = j + 1
			}
		case ':':
			if depth == 0 {
				if colon >= 0 {
					return nil, &Error{Pos: j, Msg: "more than one ':' in a subscript dimension"}
				}
				colon = j
			}
		}
		j++
	}
	if err := flush(to); err != nil {
		return nil, err
	}
	return dims, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}
