package arraysugar

import (
	"strings"
	"testing"
)

var cols = Columns{
	"v": "FloatArray",
	"m": "FloatArray",
	"c": "FloatArrayMax",
	"w": "IntArray",
}

func translate(t *testing.T, q string) string {
	t.Helper()
	out, err := Translate(q, cols)
	if err != nil {
		t.Fatalf("Translate(%q): %v", q, err)
	}
	return out
}

func TestItemAccess(t *testing.T) {
	got := translate(t, "SELECT v[3] FROM t")
	want := "SELECT FloatArray.Item_1(v, 3) FROM t"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestMultiDimItem(t *testing.T) {
	got := translate(t, "SELECT m[1, 0] FROM t")
	want := "SELECT FloatArray.Item_2(m, 1, 0) FROM t"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestSlice(t *testing.T) {
	got := translate(t, "SELECT v[1:4] FROM t")
	want := "SELECT FloatArray.Subarray(v, IntArray.Vector_1(1), IntArray.Vector_1((4)-(1)), 1) FROM t"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestMixedIndexAndSlice(t *testing.T) {
	got := translate(t, "SELECT c[2, 0:3] FROM t")
	want := "SELECT FloatArrayMax.Subarray(c, IntArray.Vector_2(2, 0), IntArray.Vector_2(1, (3)-(0)), 1) FROM t"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExpressionsInsideSubscript(t *testing.T) {
	got := translate(t, "SELECT v[1 + 2] FROM t")
	if got != "SELECT FloatArray.Item_1(v, 1 + 2) FROM t" {
		t.Errorf("got %q", got)
	}
	// Nested subscripts: the index is itself a subscripted column.
	got = translate(t, "SELECT v[w[0]] FROM t")
	if got != "SELECT FloatArray.Item_1(v, IntArray.Item_1(w, 0)) FROM t" {
		t.Errorf("nested: %q", got)
	}
}

func TestMultipleSubscriptsInOneQuery(t *testing.T) {
	got := translate(t, "SELECT v[0] + v[1], m[0,0] FROM t WHERE v[2] > 1")
	for _, want := range []string{
		"FloatArray.Item_1(v, 0)",
		"FloatArray.Item_1(v, 1)",
		"FloatArray.Item_2(m, 0, 0)",
		"FloatArray.Item_1(v, 2) > 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestStringsAndCommentsUntouched(t *testing.T) {
	got := translate(t, "SELECT 'v[3]' FROM t -- v[9] in comment")
	if !strings.Contains(got, "'v[3]'") || !strings.Contains(got, "-- v[9] in comment") {
		t.Errorf("literal/comment rewritten: %q", got)
	}
	// Escaped quotes inside strings.
	got = translate(t, "SELECT 'it''s v[1]' FROM t")
	if !strings.Contains(got, "'it''s v[1]'") {
		t.Errorf("escaped string rewritten: %q", got)
	}
}

func TestNoSugarPassThrough(t *testing.T) {
	q := "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)"
	if got := translate(t, q); got != q {
		t.Errorf("pass-through changed: %q", got)
	}
}

func TestCaseInsensitiveColumnLookup(t *testing.T) {
	got := translate(t, "SELECT V[0] FROM t")
	if !strings.Contains(got, "FloatArray.Item_1(V, 0)") {
		t.Errorf("case-insensitive lookup failed: %q", got)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"SELECT unknown[0] FROM t",       // unmapped column
		"SELECT v[0 FROM t",              // unbalanced bracket
		"SELECT v[] FROM t",              // empty subscript
		"SELECT v[1:2:3] FROM t",         // double colon
		"SELECT v[1,] FROM t",            // empty dimension
		"SELECT v[:3] FROM t",            // missing lower bound
		"SELECT v[1,2,3,4,5,6,7] FROM t", // rank 7
		"SELECT 'open FROM t",            // unterminated string
	}
	for _, q := range bad {
		if _, err := Translate(q, cols); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestWhitespaceBeforeBracket(t *testing.T) {
	got := translate(t, "SELECT v [3] FROM t")
	if !strings.Contains(got, "FloatArray.Item_1(v, 3)") {
		t.Errorf("spaced subscript: %q", got)
	}
}
