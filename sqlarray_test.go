package sqlarray

import (
	"math"
	"testing"
)

func TestFacadeArrayConstruction(t *testing.T) {
	a := Vector(1, 2, 3, 4, 5)
	if a.Class() != Short || a.ElemType() != Float64 || a.Len() != 5 {
		t.Fatalf("Vector: %v %v %d", a.Class(), a.ElemType(), a.Len())
	}
	v, err := a.Item(3)
	if err != nil || v != 4 {
		t.Errorf("Item(3) = %g, %v", v, err)
	}
	m, err := Matrix(2, 2, 0.1, 0.2, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Item(1, 0); v != 0.2 {
		t.Errorf("Matrix item = %g", v)
	}
	b, err := Wrap(a.Bytes())
	if err != nil || !a.Equal(b) {
		t.Errorf("Wrap roundtrip: %v", err)
	}
	p, err := Parse(Float64, "[1,2,3]")
	if err != nil || p.Len() != 3 {
		t.Errorf("Parse: %v", err)
	}
	if s := Format(p); s != "[1,2,3]" {
		t.Errorf("Format = %q", s)
	}
}

func TestDatabaseQueryThroughFacade(t *testing.T) {
	db := NewDatabase()
	got, err := db.QueryScalarFloat(
		"SELECT FloatArray.Item_1(FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0), 3) FROM dual")
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("paper example = %g, want 4", got)
	}
	// Non-scalar results still accessible through Query.
	res, err := db.Query("SELECT id FROM dual")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("Query: %v, %v", res, err)
	}
	if _, err := db.QueryScalarFloat("SELECT broken FROM dual"); err == nil {
		t.Error("bad query must fail")
	}
}

func TestTable1SmallRun(t *testing.T) {
	db := NewDatabase()
	const rows = 5_000
	if err := SetupTable1(db, rows); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTable1Config()
	cfg.Rows = rows
	ms, err := RunTable1(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("%d measurements", len(ms))
	}
	// Query results: counts equal rows, sums match across layouts.
	if ms[0].Value != rows || ms[1].Value != rows {
		t.Errorf("counts = %g, %g", ms[0].Value, ms[1].Value)
	}
	if math.Abs(ms[2].Value-ms[3].Value) > 1e-9 {
		t.Errorf("SUM(v1) %g != SUM(Item_1(v,0)) %g", ms[2].Value, ms[3].Value)
	}
	if ms[4].Value != 0 {
		t.Errorf("empty-UDF sum = %g", ms[4].Value)
	}
	// Per-row UDF calls on queries 4 and 5 only.
	if ms[3].UDFCalls != rows || ms[4].UDFCalls != rows {
		t.Errorf("UDF calls = %d, %d", ms[3].UDFCalls, ms[4].UDFCalls)
	}
	if ms[0].UDFCalls != 0 {
		t.Errorf("query 1 crossed the boundary %d times", ms[0].UDFCalls)
	}
	// Shape of Table 1: the vector count scan reads more bytes than the
	// scalar one (bigger table), and the UDF query burns more CPU than
	// the plain sum.
	if ms[1].Bytes <= ms[0].Bytes {
		t.Errorf("Tvector scan bytes %d <= Tscalar %d", ms[1].Bytes, ms[0].Bytes)
	}
	if ms[3].CPU <= ms[2].CPU {
		t.Errorf("UDF query CPU %v <= plain sum %v", ms[3].CPU, ms[2].CPU)
	}
}

func TestTable1StorageOverhead(t *testing.T) {
	db := NewDatabase()
	if err := SetupTable1(db, 20_000); err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareTable1Storage(db)
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: the vector table is bigger due to per-row array headers.
	// Our rows: scalar = 6 null bytes + 6×8 = 54 B; vector = 2 null
	// bytes + 8 + 2 + (24 hdr + 40 data) = 76 B → ratio ≈ 1.41.
	if cmp.ByteRatio < 1.2 || cmp.ByteRatio > 1.7 {
		t.Errorf("byte ratio = %.3f, want ~1.4 (paper: 1.43)", cmp.ByteRatio)
	}
	if cmp.PageRatio <= 1 {
		t.Errorf("page ratio = %.3f, want > 1", cmp.PageRatio)
	}
	if cmp.ScalarStats.Rows != 20_000 || cmp.VectorStats.Rows != 20_000 {
		t.Error("row counts wrong")
	}
}

func TestDeriveUDFCost(t *testing.T) {
	db := NewDatabase()
	const rows = 20_000
	if err := SetupTable1(db, rows); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTable1Config()
	ms, err := RunTable1(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := DeriveUDFCost(ms, rows)
	if err != nil {
		t.Fatal(err)
	}
	if bd.PerCallCost <= 0 {
		t.Errorf("per-call cost = %v, want positive", bd.PerCallCost)
	}
	// The boundary must be a substantial share of the empty-call query
	// (paper: >= 38%); with our lighter boundary accept anything
	// clearly nonzero.
	if bd.EmptyCallShare < 0.05 {
		t.Errorf("empty-call share = %.2f, want >= 0.05", bd.EmptyCallShare)
	}
	// Extracting the item costs more than not extracting it; at this
	// scale the CPU deltas are a few ms, so allow scheduler noise and
	// only reject a grossly negative value (cmd/table1 measures the
	// precise increment at full scale).
	if bd.ExtractionIncrement < -0.3 {
		t.Errorf("extraction increment = %.2f, want >= -0.3", bd.ExtractionIncrement)
	}
	if _, err := DeriveUDFCost(ms[:3], rows); err == nil {
		t.Error("short measurement list must fail")
	}
}

func TestMeasureQueryColumns(t *testing.T) {
	db := NewDatabase()
	if err := SetupTable1(db, 2_000); err != nil {
		t.Fatal(err)
	}
	m, err := MeasureQuery(db, Table1Queries[0], DefaultIOModel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bytes == 0 {
		t.Error("cold scan read zero bytes")
	}
	if m.Time <= 0 || m.CPULoad <= 0 || m.CPULoad > 100.5 {
		t.Errorf("reconstructed columns: time %v load %.1f%%", m.Time, m.CPULoad)
	}
	if m.IOMBps <= 0 {
		t.Errorf("I/O rate = %g", m.IOMBps)
	}
}
