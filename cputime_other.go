//go:build !linux

package sqlarray

import "time"

// processCPUTime falls back to wall-clock time on platforms without
// rusage; single-threaded queries make the two nearly equal.
var processStart = time.Now()

func processCPUTime() time.Duration { return time.Since(processStart) }
