// Quickstart: the array type and the T-SQL surface in five minutes.
// Mirrors the usage examples of §5.1/§5.3 of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sqlarray"
)

func main() {
	// --- arrays as values -------------------------------------------------
	// DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
	a := sqlarray.Vector(1, 2, 3, 4, 5)
	fmt.Println("vector:", sqlarray.Format(a))

	// SELECT FloatArray.Item_1(@a, 3)
	v, err := a.Item(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("item 3 (zero indexed):", v)

	// DECLARE @m = FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4); Item_2(@m, 1, 0)
	m, err := sqlarray.Matrix(2, 2, 0.1, 0.2, 0.3, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = m.Item(1, 0)
	fmt.Println("matrix element (1,0):", v)

	// Subarray with the T-SQL calling convention: offset and size come
	// as integer index vectors; the last flag collapses unit dims.
	cube, err := sqlarray.New(sqlarray.Max, sqlarray.Float64, 10, 10, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < cube.Len(); i++ {
		cube.SetFloatAt(i, float64(i))
	}
	sub, err := cube.SubarrayFrom(sqlarray.IntVector(1, 4, 6), sqlarray.IntVector(5, 5, 4), false)
	if err != nil {
		log.Fatal(err)
	}
	h := sub.Header()
	fmt.Println("subarray:", h.String(), "sum:", sub.Sum())

	// Reshape keeps the payload, changes the dims (§5.1: "original and
	// target sizes must not differ").
	r, err := a.Reshape(5, 1)
	if err != nil {
		log.Fatal(err)
	}
	rh := r.Header()
	fmt.Println("reshaped:", rh.String())

	// The blob is the storage format: Bytes() is exactly what a
	// VARBINARY column holds, Wrap() reads it back.
	blob := a.Bytes()
	back, err := sqlarray.Wrap(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blob roundtrip: %d bytes, equal=%v\n", len(blob), a.Equal(back))

	// --- SQL on top ---------------------------------------------------------
	db := sqlarray.NewDatabase()
	sum, err := db.QueryScalarFloat(
		"SELECT FloatArray.Sum(FloatArray.Vector_4(1, 2, 3, 4)) FROM dual")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL array sum:", sum)

	// The math-library entry points of §5.3: FFT of an array, straight
	// from SQL. The DC bin of the spectrum is the sum of the inputs.
	res, err := db.Query(
		"SELECT DoubleComplexArrayMax.Item_1(FloatArrayMax.FFTForward(FloatArrayMax.Convert(FloatArray.Vector_8(1,2,3,4,5,6,7,8))), 0) FROM dual")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FFT DC bin via SQL:", res.Rows[0][0])
}
