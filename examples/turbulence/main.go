// Turbulence example: the §2.1 scenario end to end — generate a
// divergence-free velocity field, partition it into z-ordered ghosted
// cubes stored as array blobs, and serve batched particle interpolation
// queries, comparing whole-blob against partial-read I/O and different
// blob sizes (the trade-off the paper says they were "currently
// experimenting with").
//
//	go run ./examples/turbulence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"sqlarray/internal/engine"
	"sqlarray/internal/interp"
	"sqlarray/internal/obs"
	"sqlarray/internal/sqlmini"
	"sqlarray/internal/turbulence"
)

func main() {
	const n = 32 // grid side (the production JHU box is 1024)
	fmt.Printf("generating %d^3 synthetic isotropic turbulence...\n", n)
	field, err := turbulence.GenerateField(n, 24, 2024)
	if err != nil {
		log.Fatal(err)
	}

	// 10,000 probe positions, like one public-service request.
	rng := rand.New(rand.NewSource(7))
	pts := make([][3]float64, 10_000)
	for i := range pts {
		pts[i] = [3]float64{rng.Float64() * n, rng.Float64() * n, rng.Float64() * n}
	}

	fmt.Printf("%-8s %-8s %-10s %-14s %-14s\n", "cube", "ghost", "blob kB", "mode", "bytes/point")
	for _, cube := range []int{8, 16, 32} {
		db := engine.NewDB(engine.Options{PoolPages: 16384})
		store, err := turbulence.CreateStore(db, "turb", field, cube, 4)
		if err != nil {
			log.Fatal(err)
		}
		for _, mode := range []turbulence.FetchMode{turbulence.WholeBlob, turbulence.PartialRead} {
			if err := store.DropCache(); err != nil {
				log.Fatal(err)
			}
			store.ResetStats()
			vel, err := store.VelocityBatch(0, pts[:2000], interp.Lag8, mode)
			if err != nil {
				log.Fatal(err)
			}
			st := store.Stats()
			_ = vel
			fmt.Printf("%-8d %-8d %-10d %-14s %-14.0f\n",
				cube, store.Ghost(), store.BlockBytes()/1024, mode.String(),
				float64(st.BytesRead)/2000)
		}
	}

	// Interpolation scheme comparison at fixed storage.
	db := engine.NewDB(engine.Options{PoolPages: 16384})
	store, err := turbulence.CreateStore(db, "turb", field, 16, 4)
	if err != nil {
		log.Fatal(err)
	}
	// Slow-query log on the cube table: scanning every z-ordered blob
	// row trips a 50µs threshold and logs one JSON line with the
	// analyzed plan, pages read and blob chunk reads; the zkey point
	// lookup stays under it and logs nothing.
	fmt.Println("\nslow-query log (threshold 50µs; the blob scan trips it):")
	slowOpts := sqlmini.ExecOptions{
		SlowQueryThreshold: 50 * time.Microsecond,
		SlowQueryLog:       obs.NewSlowLog(os.Stdout),
	}
	for _, q := range []string{
		"SELECT zkey, blob FROM turb",
		"SELECT zkey FROM turb WHERE zkey = 0",
	} {
		if _, err := sqlmini.RunWith(db, q, slowOpts); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nscheme accuracy vs the analytic field (first probe):")
	truth, err := store.Velocity(0, pts[0], interp.Lag8, turbulence.WholeBlob)
	if err != nil {
		log.Fatal(err)
	}
	for _, scheme := range []interp.Scheme{interp.Nearest, interp.Linear, interp.Lag4, interp.Lag6, interp.Lag8} {
		v, err := store.Velocity(0, pts[0], scheme, turbulence.WholeBlob)
		if err != nil {
			log.Fatal(err)
		}
		d := 0.0
		for k := 0; k < 3; k++ {
			d += (v[k] - truth[k]) * (v[k] - truth[k])
		}
		fmt.Printf("  %-8s u=(%+.4f, %+.4f, %+.4f)  |Δ vs lag8|=%.2e\n",
			scheme, v[0], v[1], v[2], d)
	}
}
