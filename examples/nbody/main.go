// N-body example: the §2.3 scenario — synthesize clustered snapshots,
// store them as z-ordered array buckets (versus the row-per-particle
// strawman), find FOF halos, link the merger history across time steps,
// compute the CIC density and its power spectrum, the two-point
// correlation function, and extract a light-cone through the snapshots.
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sqlarray/internal/engine"
	"sqlarray/internal/nbody"
	"sqlarray/internal/obs"
	"sqlarray/internal/octree"
	"sqlarray/internal/sqlmini"
)

func main() {
	const n = 30_000
	fmt.Printf("generating %d clustered particles...\n", n)
	snap0, err := nbody.GenerateSnapshot(nbody.GenParams{
		N: n, NHalos: 8, HaloFrac: 0.55, HaloR: 0.015, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	snap1 := nbody.Evolve(snap0, 0.004)
	snap2 := nbody.Evolve(snap1, 0.004)

	// Storage: buckets vs row-per-particle.
	db := engine.NewDB(engine.Options{PoolPages: 32768})
	buckets, err := nbody.CreateBucketStore(db, "buckets", snap0, 2000)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := nbody.CreateRowStore(db, "rows", snap0)
	if err != nil {
		log.Fatal(err)
	}
	bStats, _ := buckets.Table().Stats()
	rStats, _ := rows.Table().Stats()
	fmt.Printf("\nstorage (one snapshot):\n")
	fmt.Printf("  bucket store: %6d rows, %5d leaf pages (+%d blob kB out of page)\n",
		bStats.Rows, bStats.LeafPages, bStats.BlobBytes/1024)
	fmt.Printf("  row store:    %6d rows, %5d leaf pages\n", rStats.Rows, rStats.LeafPages)
	fmt.Printf("  row reduction: %.0fx (the paper's 1.6e12 -> 1e9 argument at scale)\n",
		float64(rStats.Rows)/float64(bStats.Rows))

	// Slow-query log over the row-per-particle strawman: a full-scan
	// aggregate touching every leaf page versus a point lookup riding
	// the clustered index. With a 100µs threshold only the scan shows
	// up, carrying its analyzed plan and I/O counters as a JSON line.
	fmt.Printf("\nslow-query log (threshold 100µs; only the full scan trips it):\n")
	slow := obs.NewSlowLog(os.Stdout)
	opts := sqlmini.ExecOptions{
		SlowQueryThreshold: 100 * time.Microsecond,
		SlowQueryLog:       slow,
	}
	for _, q := range []string{
		"SELECT COUNT(*), MAX(x) FROM rows WHERE x > 0.5",
		"SELECT x, y, z FROM rows WHERE pid = 12345",
	} {
		if _, err := sqlmini.RunWith(db, q, opts); err != nil {
			log.Fatal(err)
		}
	}

	// FOF halos + merger links.
	h0, err := nbody.FOF(snap0.Particles, 0.008, 20)
	if err != nil {
		log.Fatal(err)
	}
	h1, err := nbody.FOF(snap1.Particles, 0.008, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFOF halos: %d at step 0, %d at step 1 (link length 0.008, >=20 members)\n",
		len(h0), len(h1))
	links := nbody.LinkMergers(h0, h1)
	linked := 0
	for _, l := range links {
		if l.ProgenitorIdx >= 0 {
			linked++
		}
	}
	fmt.Printf("merger history: %d/%d step-1 halos linked to step-0 progenitors\n", linked, len(h1))
	if len(links) > 0 && links[0].ProgenitorIdx >= 0 {
		fmt.Printf("  largest halo: %d members, progenitor shares %d particles\n",
			len(h1[0].Members), links[0].Shared)
	}

	// CIC density + power spectrum.
	pk, err := nbody.PowerSpectrum(snap0.Particles, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npower spectrum P(k) (CIC 32^3 + FFT):\n  k:    1      2      4      8\n  P: ")
	for _, k := range []int{1, 2, 4, 8} {
		fmt.Printf("%6.1f ", pk[k])
	}
	fmt.Println()

	// Two-point correlation.
	bins := []float64{0.005, 0.01, 0.02, 0.05, 0.1}
	xi, err := nbody.TwoPointCorrelation(snap0.Particles, bins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-point correlation xi(r):\n")
	for i, r := range bins {
		fmt.Printf("  r < %-5g xi = %8.2f\n", r, xi[i])
	}

	// Light-cone through the three snapshots.
	cone := octree.Cone{
		Apex:      [3]float64{0.05, 0.05, 0.05},
		Axis:      [3]float64{1, 1, 1},
		HalfAngle: 0.35,
	}
	lc, err := nbody.Lightcone(
		[]*nbody.Snapshot{snap2, snap1, snap0},
		[]float64{0.05, 0.35, 0.65, 0.95},
		cone, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	perStep := map[int]int{}
	for _, p := range lc {
		perStep[p.Step]++
	}
	fmt.Printf("\nlight-cone: %d particles (per source step: %v)\n", len(lc), perStep)
	if len(lc) > 0 {
		fmt.Printf("  nearest at r=%.3f (z=%.3f), farthest at r=%.3f (z=%.3f)\n",
			lc[0].Dist, lc[0].Redshift, lc[len(lc)-1].Dist, lc[len(lc)-1].Redshift)
	}
}
