// Spectra example: the §2.2 pipeline — synthesize an archive of galaxy
// spectra, store them as array blobs, build redshift-binned composites,
// run PCA, expand a flagged spectrum with masked least squares (showing
// why plain dot products fail), and search for similar spectra through
// the kd-tree coefficient index.
//
//	go run ./examples/spectra
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sqlarray/internal/engine"
	"sqlarray/internal/spectra"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	db := engine.NewMemDB()
	store, err := spectra.CreateStore(db, "spectra")
	if err != nil {
		log.Fatal(err)
	}

	// An archive of 120 spectra: 4 object types x 3 redshift groups.
	fmt.Println("synthesizing and storing 120 spectra...")
	var all []*spectra.Spectrum
	for i := 0; i < 120; i++ {
		s, err := spectra.Synthesize(rng, spectra.SynthesisParams{
			Bins: 200, LoWave: 3800, HiWave: 7000,
			Z:        0.02 + 0.04*float64(i%3),
			SNR:      25,
			BadFrac:  0.01,
			LineSeed: int64(i % 4),
		})
		if err != nil {
			log.Fatal(err)
		}
		s.ID = int64(i)
		if err := store.Insert(s); err != nil {
			log.Fatal(err)
		}
		all = append(all, s)
	}
	stats, err := store.Table().Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d rows, %d leaf pages, %.1f kB out-of-page vectors\n",
		stats.Rows, stats.LeafPages, float64(stats.BlobBytes)/1024)

	// Composites per redshift bin.
	grid, err := spectra.LogGrid(4300, 6700, 150)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := spectra.CompositeByRedshift(all, grid, 0.04)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomposites by redshift bin (dz = 0.04): %d groups\n", len(groups))
	for bin, c := range groups {
		fmt.Printf("  z ∈ [%.2f, %.2f): flux(5000Å)=%.3f\n",
			float64(bin)*0.04, float64(bin+1)*0.04, fluxAt(c, 5000*(1+float64(bin)*0.04)))
	}

	// PCA + masked expansion.
	basis, err := spectra.PCA(all, grid, 6, 4500, 6500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPCA: leading eigenvalues: ")
	for _, v := range basis.Values[:4] {
		fmt.Printf("%.2e ", v)
	}
	fmt.Println()

	clean := all[17]
	truth, err := basis.Expand(clean)
	if err != nil {
		log.Fatal(err)
	}
	dirty := clean.Clone()
	sign := 30.0
	for i := 0; i < len(dirty.Flux); i += 15 {
		dirty.Flux[i] += sign
		sign = -sign
		dirty.Flags[i] = 1
	}
	masked, err := basis.Expand(dirty)
	if err != nil {
		log.Fatal(err)
	}
	dotted, err := basis.ExpandDot(dirty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expansion of a spectrum with 7%% corrupted+flagged pixels:\n")
	fmt.Printf("  masked LSQ error: %.4f   plain dot error: %.4f\n",
		coefErr(masked, truth), coefErr(dotted, truth))

	// Similar-spectrum search.
	ix, err := spectra.BuildSearchIndex(basis, all)
	if err != nil {
		log.Fatal(err)
	}
	query := all[42] // type 42%4 = 2
	ids, err := ix.Similar(query, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n6 nearest neighbours of spectrum %d (type %d): ", query.ID, query.ID%4)
	for _, id := range ids {
		fmt.Printf("%d(type %d) ", id, id%4)
	}
	fmt.Println()
}

func fluxAt(s *spectra.Spectrum, w float64) float64 {
	best, bd := 0, math.Inf(1)
	for i, x := range s.Wave {
		if d := math.Abs(x - w); d < bd {
			best, bd = i, d
		}
	}
	return s.Flux[best]
}

func coefErr(got, want []float64) float64 {
	s := 0.0
	for i := range want {
		d := got[i] - want[i]
		s += d * d
	}
	return math.Sqrt(s)
}
