package sqlarray

// One benchmark per experiment row of DESIGN.md §4. Run with
//
//	go test -bench=. -benchmem
//
// E1-E5  BenchmarkTable1Query{1..5}   — the five §6.3 queries
// E6     BenchmarkUDFBoundary*        — per-call boundary cost
// E7     (TestTable1StorageOverhead)  — size ratio, plus BenchmarkRowDecode
// E8     BenchmarkStorageClass*, BenchmarkSubarray*
// E9     BenchmarkFFT*, BenchmarkSVD* — math-library amortization
// E10    BenchmarkTurbulence*         — stencil service vs blob size
// E11    BenchmarkSpectraPipeline     — resample/composite/PCA path
// E12    BenchmarkNBody*              — bucket store, FOF, CIC+P(k)

import (
	"math/rand"
	"testing"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/fft"
	"sqlarray/internal/interp"
	"sqlarray/internal/lapack"
	"sqlarray/internal/nbody"
	"sqlarray/internal/pages"
	"sqlarray/internal/spectra"
	"sqlarray/internal/turbulence"
)

// ---- E1-E5: Table 1 ---------------------------------------------------

var table1DB *Database

func table1Setup(b *testing.B) *Database {
	b.Helper()
	if table1DB == nil {
		db := NewDatabase()
		if err := SetupTable1(db, 100_000); err != nil {
			b.Fatal(err)
		}
		table1DB = db
	}
	return table1DB
}

func benchTable1Query(b *testing.B, qi int) {
	db := table1Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := db.DropCleanBuffers(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := db.Query(Table1Queries[qi]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100_000, "rows/op")
}

func BenchmarkTable1Query1CountScalar(b *testing.B) { benchTable1Query(b, 0) }
func BenchmarkTable1Query2CountVector(b *testing.B) { benchTable1Query(b, 1) }
func BenchmarkTable1Query3SumScalar(b *testing.B)   { benchTable1Query(b, 2) }
func BenchmarkTable1Query4SumItemUDF(b *testing.B)  { benchTable1Query(b, 3) }
func BenchmarkTable1Query5SumEmptyUDF(b *testing.B) { benchTable1Query(b, 4) }

// ---- E6: the boundary itself -------------------------------------------

func BenchmarkUDFBoundaryEmptyCall(b *testing.B) {
	reg := engine.NewFuncRegistry()
	reg.Register("dbo.empty", 2, func(args []engine.Value) (engine.Value, error) {
		return engine.FloatValue(0), nil
	})
	def, err := reg.Lookup("dbo.empty")
	if err != nil {
		b.Fatal(err)
	}
	blob := core.Vector(1, 2, 3, 4, 5).Bytes()
	args := []engine.Value{engine.BinaryValue(blob), engine.IntValue(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Call(def, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUDFBoundaryItemCall(b *testing.B) {
	db := NewDatabase()
	def, err := db.Funcs().Lookup("floatarray.item_1")
	if err != nil {
		b.Fatal(err)
	}
	blob := core.Vector(1, 2, 3, 4, 5).Bytes()
	args := []engine.Value{engine.BinaryValue(blob), engine.IntValue(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Funcs().Call(def, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUDFNativeItem is the no-boundary baseline: the same item
// extraction called directly, showing what the CLR-style crossing adds.
func BenchmarkUDFNativeItem(b *testing.B) {
	a := core.Vector(1, 2, 3, 4, 5)
	sum := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum += a.FloatAt(0)
	}
	_ = sum
}

// ---- E7: row decoding with and without the array column -----------------

func BenchmarkConcatUDAvsDirect(b *testing.B) {
	db := NewDatabase()
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
	)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := db.CreateTable("agg", s)
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 20_000; i++ {
		if err := tbl.Insert([]engine.Value{engine.IntValue(i), engine.FloatValue(float64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	agg := &benchSumAgg{}
	b.Run("UDAProtocol", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.RunAggregateUDA(tbl, 1, agg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DirectFunction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.RunAggregateDirect(tbl, 1, agg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSumAgg is a minimal serializable SUM aggregate.
type benchSumAgg struct{ sum float64 }

func (a *benchSumAgg) Init() { a.sum = 0 }
func (a *benchSumAgg) Accumulate(v engine.Value) error {
	f, err := v.AsFloat()
	if err != nil {
		return err
	}
	a.sum += f
	return nil
}
func (a *benchSumAgg) Terminate() (engine.Value, error) { return engine.FloatValue(a.sum), nil }
func (a *benchSumAgg) Serialize(dst []byte) []byte {
	var b [8]byte
	core.Vector(a.sum) // realistic state-serialization work
	return append(append(dst, b[:]...), 0)
}
func (a *benchSumAgg) Deserialize(src []byte) error { return nil }

// ---- E8: storage classes and partial reads ------------------------------

func BenchmarkStorageClassShortItem(b *testing.B) {
	a, err := core.New(core.Short, core.Float64, 31, 31) // page-sized
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Item(i%31, (i/31)%31); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageClassMaxItem(b *testing.B) {
	a, err := core.New(core.Max, core.Float64, 512, 512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Item(i%512, (i/512)%512); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSubarray(b *testing.B, collapse bool) {
	a, err := core.New(core.Max, core.Float64, 128, 128, 128)
	if err != nil {
		b.Fatal(err)
	}
	off := []int{10, 20, 30}
	size := []int{8, 8, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Subarray(off, size, collapse); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubarray8Cube(b *testing.B) { benchSubarray(b, false) }

// BenchmarkSubarrayPartialVsWholeBlob measures E8's stored-blob variant
// through the turbulence service, which drives blob.ReadRuns, on both
// the raw and compressed chunk formats. The field is shaped as a mean
// flow carrying a small fluctuation, the profile the XOR-delta codec
// compresses, so the compressed variants also show the bytes-read
// (disk-bytes/op metric) reduction per stencil fetch. The store sits on
// a 150 MB/s throttled disk — the sequential bandwidth the paper's
// storage era assumes — so fewer pages read translates to wall-clock
// the way it does off a real device (on an unthrottled MemDisk, memcpy
// outruns decompression and the volume win is invisible).
func BenchmarkSubarrayPartialVsWholeBlob(b *testing.B) {
	f, err := turbulence.GenerateField(32, 12, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, ch := range [][]float64{f.U, f.V, f.W, f.P} {
		for i := range ch {
			ch[i] = 1000 + ch[i]*1e-9
		}
	}
	pt := [][3]float64{{11.3, 21.8, 6.4}}
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"raw", true}, {"compressed", false}} {
		disk := pages.NewThrottledDisk(pages.NewMemDisk(), 150<<20)
		db := engine.NewDB(engine.Options{Disk: disk, PoolPages: 4096, DisableBlobCompression: variant.disable})
		st, err := turbulence.CreateStore(db, "turb", f, 32, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []turbulence.FetchMode{turbulence.WholeBlob, turbulence.PartialRead} {
			mode := mode
			b.Run(variant.name+"/"+mode.String(), func(b *testing.B) {
				var diskBytes uint64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := st.DropCache(); err != nil {
						b.Fatal(err)
					}
					st.ResetStats()
					b.StartTimer()
					if _, err := st.VelocityBatch(0, pt, interp.Lag8, mode); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					diskBytes += st.Stats().BytesRead
					b.StartTimer()
				}
				b.ReportMetric(float64(diskBytes)/float64(b.N), "disk-bytes/op")
			})
		}
	}
}

// ---- E9: math library amortization --------------------------------------

func BenchmarkFFTViaArray(b *testing.B) {
	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i % 17)
	}
	a, err := core.FromFloat64s(core.Max, core.Float64, data, len(data))
	if err != nil {
		b.Fatal(err)
	}
	db := NewDatabase()
	def, err := db.Funcs().Lookup("floatarraymax.fftforward")
	if err != nil {
		b.Fatal(err)
	}
	args := []engine.Value{engine.BinaryMaxValue(a.Bytes())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Funcs().Call(def, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTRawSlice(b *testing.B) {
	data := make([]complex128, 4096)
	for i := range data {
		data[i] = complex(float64(i%17), 0)
	}
	plan, err := fft.NewPlan(len(data), fft.Forward)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]complex128, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Execute(dst, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVDViaArray(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 48
	data := make([]float64, n*n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	a, err := core.FromFloat64s(core.Max, core.Float64, data, n, n)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDatabase()
	def, err := db.Funcs().Lookup("floatarraymax.svdvalues")
	if err != nil {
		b.Fatal(err)
	}
	args := []engine.Value{engine.BinaryMaxValue(a.Bytes())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Funcs().Call(def, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVDRawMatrix(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 48
	m := lapack.NewMat(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lapack.SVD(m); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E10: turbulence service vs blob size --------------------------------

func BenchmarkTurbulenceInterpBlobSize(b *testing.B) {
	f, err := turbulence.GenerateField(32, 12, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	pts := make([][3]float64, 64)
	for i := range pts {
		pts[i] = [3]float64{rng.Float64() * 32, rng.Float64() * 32, rng.Float64() * 32}
	}
	for _, cube := range []int{8, 16, 32} {
		cube := cube
		b.Run("cube"+itoa(cube), func(b *testing.B) {
			db := engine.NewDB(engine.Options{PoolPages: 8192})
			st, err := turbulence.CreateStore(db, "turb", f, cube, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := st.DropCache(); err != nil {
					b.Fatal(err)
				}
				st.ResetStats()
				b.StartTimer()
				if _, err := st.VelocityBatch(0, pts, interp.Lag8, turbulence.WholeBlob); err != nil {
					b.Fatal(err)
				}
			}
			st2 := st.Stats()
			b.ReportMetric(float64(st2.BytesRead)/float64(len(pts)), "bytes/point")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- E11: spectrum pipeline ----------------------------------------------

func BenchmarkSpectraPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	specs := make([]*spectra.Spectrum, 32)
	for i := range specs {
		s, err := spectra.Synthesize(rng, spectra.SynthesisParams{
			Bins: 180, LoWave: 3800, HiWave: 7000, Z: 0.03, SNR: 30,
			BadFrac: 0.01, LineSeed: int64(i % 4),
		})
		if err != nil {
			b.Fatal(err)
		}
		s.ID = int64(i)
		specs[i] = s
	}
	grid, err := spectra.LogGrid(4000, 6900, 120)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis, err := spectra.PCA(specs, grid, 5, 4300, 6500)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := spectra.BuildSearchIndex(basis, specs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.Similar(specs[7], 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectraResample(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	s, err := spectra.Synthesize(rng, spectra.SynthesisParams{
		Bins: 1000, LoWave: 3800, HiWave: 9000, Z: 0.05, SNR: 30, LineSeed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := spectra.LogGrid(4200, 8500, 700)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectra.Resample(s, grid); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E12: N-body ----------------------------------------------------------

func BenchmarkNBodyBucketIngest(b *testing.B) {
	snap, err := nbody.GenerateSnapshot(nbody.GenParams{
		N: 20_000, NHalos: 6, HaloFrac: 0.5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := engine.NewDB(engine.Options{PoolPages: 16384})
		if _, err := nbody.CreateBucketStore(db, "parts", snap, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNBodyFOF(b *testing.B) {
	snap, err := nbody.GenerateSnapshot(nbody.GenParams{
		N: 20_000, NHalos: 6, HaloFrac: 0.5, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nbody.FOF(snap.Particles, 0.01, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNBodyCICPowerSpectrum(b *testing.B) {
	snap, err := nbody.GenerateSnapshot(nbody.GenParams{
		N: 20_000, NHalos: 6, HaloFrac: 0.5, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nbody.PowerSpectrum(snap.Particles, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Design-choice ablation: column-major marshaling ----------------------

// BenchmarkMajorOrder shows what the column-major storage decision buys:
// handing a stored matrix to the LAPACK-style layer is a straight copy,
// while a row-major store would transpose.
func BenchmarkMajorOrder(b *testing.B) {
	const n = 256
	data := make([]float64, n*n)
	for i := range data {
		data[i] = float64(i)
	}
	b.Run("ColumnMajorCopy", func(b *testing.B) {
		dst := make([]float64, n*n)
		for i := 0; i < b.N; i++ {
			copy(dst, data)
		}
	})
	b.Run("RowMajorTranspose", func(b *testing.B) {
		dst := make([]float64, n*n)
		for i := 0; i < b.N; i++ {
			for r := 0; r < n; r++ {
				for c := 0; c < n; c++ {
					dst[c*n+r] = data[r*n+c]
				}
			}
		}
	})
}
