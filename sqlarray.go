// Package sqlarray is a Go reproduction of the array data type for
// relational databases described in Dobos et al., "Array Requirements
// for Scientific Applications and an Implementation for Microsoft SQL
// Server" (EDBT 2011, arXiv:1110.1729).
//
// The library provides:
//
//   - the array blob format itself (header + column-major payload, two
//     storage classes keyed to the 8 kB page size) — package
//     internal/core, re-exported here;
//   - a miniature relational engine (8 kB slotted pages, buffer pool,
//     clustered B+tree tables, out-of-page blob store with partial
//     reads, a CLR-like UDF boundary) and a SQL subset that runs the
//     paper's queries verbatim;
//   - a batch-at-a-time streaming executor: SELECT statements are
//     lowered into an operator pipeline (scan → filter → aggregate →
//     project → limit) that moves column-major batches of ~1024 rows
//     between operators — the scan fills batches straight off B+tree
//     leaves, filters compact them in place through selection vectors,
//     and aggregates consume whole batches. Sargable WHERE conjuncts on
//     the clustered key (id = k, id >= lo AND id <= hi) are pushed into
//     the scan as key ranges, TOP n / LIMIT n clips the scan's batch
//     budget so it stops after n rows, and large aggregate scans
//     partition the key space across goroutines. Query materializes
//     results; QueryRows streams them; ExecOptions tunes batch size,
//     parallelism, or forces the row-at-a-time pipeline;
//   - the T-SQL function surface (FloatArray.Item_1,
//     FloatArrayMax.Subarray, IntArray.Vector_2, ...);
//   - math substrates standing in for LAPACK and FFTW, plus the three
//     scientific use-case packages (turbulence, spectra, nbody);
//   - the experiment harness regenerating the paper's evaluation
//     (Table 1 and the §6-7 derived claims).
//
// Quick start:
//
//	db := sqlarray.NewDatabase()
//	a := sqlarray.Vector(1, 2, 3, 4, 5)
//	v, _ := a.Item(3) // 4
//	res, _ := db.Query("SELECT FloatArray.Sum(FloatArray.Vector_3(1,2,3)) FROM dual")
package sqlarray

import (
	"io"

	"sqlarray/internal/arraysugar"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/pages"
	"sqlarray/internal/sqlmini"
	"sqlarray/internal/tsql"
	"sqlarray/internal/wal"
)

// Array is the array data type: a validated view over a serialized
// blob (header + column-major payload). See internal/core for the full
// method set: Item, UpdateItem, Subarray, Reshape, Sum, ReduceDim, ...
type Array = core.Array

// Header is the decoded array header.
type Header = core.Header

// ElemType identifies an array's element type.
type ElemType = core.ElemType

// Element types (§3.4 of the paper).
const (
	Int8       = core.Int8
	Int16      = core.Int16
	Int32      = core.Int32
	Int64      = core.Int64
	Float32    = core.Float32
	Float64    = core.Float64
	Complex64  = core.Complex64
	Complex128 = core.Complex128
)

// StorageClass distinguishes on-page short arrays from out-of-page max
// arrays (§3.3).
type StorageClass = core.StorageClass

// Storage classes.
const (
	Short = core.Short
	Max   = core.Max
)

// Re-exported array constructors and helpers.
var (
	// New allocates a zero array of explicit class/type/shape.
	New = core.New
	// NewAuto picks the storage class automatically.
	NewAuto = core.NewAuto
	// Wrap validates and views an existing blob.
	Wrap = core.Wrap
	// Vector builds a float64 vector (short class when it fits).
	Vector = core.Vector
	// IntVector builds an int32 index vector.
	IntVector = core.IntVector
	// Matrix builds an r×c float64 matrix from column-major values.
	Matrix = core.Matrix
	// FromFloat64s / FromInt64s / FromComplex128s build arrays from
	// slices.
	FromFloat64s    = core.FromFloat64s
	FromInt64s      = core.FromInt64s
	FromComplex128s = core.FromComplex128s
	// Parse reads the bracketed text form; Format writes it.
	Parse  = core.Parse
	Format = core.Format
	// Cast prefixes raw bytes with a header (§5.1).
	Cast = core.Cast
	// Elementwise operations.
	Add       = core.Add
	Sub       = core.Sub
	Mul       = core.Mul
	Div       = core.Div
	AXPY      = core.AXPY
	Dot       = core.Dot
	MaskedDot = core.MaskedDot
)

// Result is a materialized query result.
type Result = sqlmini.Result

// Rows is a streaming query result cursor; see QueryRows.
type Rows = sqlmini.Rows

// ExecOptions tunes query execution (parallel aggregate scans).
type ExecOptions = sqlmini.ExecOptions

// Database is a sqlarray engine instance with the full T-SQL function
// surface registered and a one-row "dual" table for scalar SELECTs.
type Database struct {
	*engine.DB
}

// Options configures a database (disk backing, buffer pool size).
type Options = engine.Options

// WALOptions re-exports the write-ahead-log tuning knobs.
type WALOptions = wal.Options

// NewWAL opens (or recovers) a write-ahead log in dir; pass the result
// as Options.WAL to make the database durable.
func NewWAL(dir string, opts WALOptions) (*wal.Log, error) {
	st, err := wal.NewDirStorage(dir)
	if err != nil {
		return nil, err
	}
	return wal.Open(st, opts)
}

// NewMemWAL opens a write-ahead log over in-memory storage — durability
// protocol without a filesystem, which is what sqlsh and the recovery
// tests use.
func NewMemWAL() *wal.Log {
	l, err := wal.Open(wal.NewMemStorage(), wal.Options{})
	if err != nil {
		panic(err) // empty in-memory storage cannot fail to open
	}
	return l
}

// NewDatabase creates an in-memory database ready for queries.
func NewDatabase() *Database {
	return NewDatabaseWith(Options{})
}

// NewDatabaseWith creates a database with explicit storage options.
// With Options.WAL set it runs crash recovery first; a recovery failure
// panics — use OpenDatabase to handle it.
func NewDatabaseWith(opts Options) *Database {
	db, err := OpenDatabase(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// OpenDatabase opens a database, recovering from the WAL when one is
// attached: committed DML since the last checkpoint is replayed and the
// uncommitted log tail discarded.
func OpenDatabase(opts Options) (*Database, error) {
	db, err := engine.Open(opts)
	if err != nil {
		return nil, err
	}
	tsql.RegisterAll(db)
	if s, err := engine.NewSchema(engine.Column{Name: "id", Type: engine.ColInt64}); err == nil {
		// Recovered databases already have dual; CreateTable then fails
		// and the seed row is skipped.
		if dual, err := db.CreateTable("dual", s); err == nil {
			_ = dual.Insert([]engine.Value{engine.IntValue(1)})
		}
	}
	return &Database{DB: db}, nil
}

// Query parses and executes a SELECT statement, materializing the full
// result. It is a thin wrapper over the streaming pipeline; use
// QueryRows to consume rows incrementally.
func (d *Database) Query(sql string) (*Result, error) {
	return sqlmini.Run(d.DB, sql)
}

// QueryRows parses and executes a SELECT statement, returning a
// streaming cursor over the operator pipeline. Rows are produced on
// demand: a TOP n query stops scanning after n rows, and a key-range
// query reads only the pages its range spans. The caller must Close the
// cursor (it releases the scan's pinned pages).
func (d *Database) QueryRows(sql string) (*Rows, error) {
	return sqlmini.Query(d.DB, sql)
}

// QueryRowsWith is QueryRows with explicit execution options.
func (d *Database) QueryRowsWith(sql string, opts ExecOptions) (*Rows, error) {
	return sqlmini.QueryWith(d.DB, sql, opts)
}

// QueryWith runs a materializing query with explicit execution options
// (e.g. forcing or disabling parallel aggregate scans).
func (d *Database) QueryWith(sql string, opts ExecOptions) (*Result, error) {
	return sqlmini.RunWith(d.DB, sql, opts)
}

// ExecResult is the outcome of Exec: a result set for SELECT, a
// rows-affected count for DML.
type ExecResult = sqlmini.ExecResult

// Exec parses and runs any supported statement — SELECT, INSERT,
// UPDATE (including in-place subarray assignment) or DELETE. DML runs
// as one write session: with a WAL attached, the statement's page
// after-images and catalog delta are logged and synced before Exec
// returns.
func (d *Database) Exec(sql string) (*ExecResult, error) {
	return sqlmini.Execute(d.DB, sql)
}

// ExecArray is Exec with the §8 subscript sugar translated first:
// `UPDATE t SET arr[2:5] = ... WHERE id = 7` lowers to an in-place
// subarray update that rewrites only the chunk pages the slice touches.
func (d *Database) ExecArray(sql string, cols ArrayColumns) (*ExecResult, error) {
	translated, err := arraysugar.Translate(sql, cols)
	if err != nil {
		return nil, err
	}
	return sqlmini.Execute(d.DB, translated)
}

// ArrayColumns maps column names to their array schemas for the
// subscript pre-parser (§8 of the paper).
type ArrayColumns = arraysugar.Columns

// TranslateArraySyntax rewrites subscript sugar (v[3], m[1,0], a[1:4])
// into standard function calls — the §8 pre-parser.
func TranslateArraySyntax(query string, cols ArrayColumns) (string, error) {
	return arraysugar.Translate(query, cols)
}

// QueryArray runs a query written in the subscripted array dialect,
// translating it first. cols maps array-valued columns to their
// schemas, standing in for catalog metadata.
func (d *Database) QueryArray(sql string, cols ArrayColumns) (*Result, error) {
	translated, err := arraysugar.Translate(sql, cols)
	if err != nil {
		return nil, err
	}
	return d.Query(translated)
}

// QueryArrayRows is the streaming form of QueryArray: the subscript
// sugar is translated, then the query runs through the operator
// pipeline. The caller must Close the cursor.
func (d *Database) QueryArrayRows(sql string, cols ArrayColumns) (*Rows, error) {
	translated, err := arraysugar.Translate(sql, cols)
	if err != nil {
		return nil, err
	}
	return d.QueryRows(translated)
}

// QueryScalarFloat runs a query expected to return a single numeric
// value.
func (d *Database) QueryScalarFloat(sql string) (float64, error) {
	res, err := d.Query(sql)
	if err != nil {
		return 0, err
	}
	v, err := res.Scalar()
	if err != nil {
		return 0, err
	}
	return v.AsFloat()
}

// BulkSource yields rows for Copy; see engine.BulkSource.
type BulkSource = engine.BulkSource

// BulkOptions tunes a bulk load.
type BulkOptions = engine.BulkOptions

// BulkStats reports what a completed bulk load wrote.
type BulkStats = engine.BulkStats

// CSVOptions tunes the CSV parse pipeline.
type CSVOptions = engine.CSVOptions

// NewValuesSource adapts an in-memory row slice to BulkSource.
var NewValuesSource = engine.NewValuesSource

// Copy bulk-loads rows into a table — the COPY path. Rows are staged,
// sorted by clustered key, packed into full fresh leaves and blob
// pages, and committed as one write session with a single WAL sync; a
// crash mid-load recovers to all of the load or none of it. The table
// must be empty or every new key must exceed its current maximum.
func (d *Database) Copy(table string, src BulkSource, opts BulkOptions) (BulkStats, error) {
	t, err := d.DB.Table(table)
	if err != nil {
		return BulkStats{}, err
	}
	return t.BulkLoad(src, opts)
}

// CopyCSV bulk-loads CSV text into a table through the parallel parse
// pipeline: a reader goroutine tokenizes records, a worker pool converts
// fields to typed values, and the loader sorts and packs the rows.
func (d *Database) CopyCSV(table string, r io.Reader, copts CSVOptions, opts BulkOptions) (BulkStats, error) {
	t, err := d.DB.Table(table)
	if err != nil {
		return BulkStats{}, err
	}
	src := engine.NewCSVSource(r, t.Schema(), copts)
	defer src.Close()
	return t.BulkLoad(src, opts)
}

// IOModel re-exports the disk model used to reconstruct the paper's
// I/O columns.
type IOModel = pages.IOModel

// DefaultIOModel matches the paper's testbed (~1150 MB/s scans).
var DefaultIOModel = pages.DefaultIOModel
